package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestGoroutineLeakRequiresTerminationPath(t *testing.T) {
	analysistest.Run(t, analysis.GoroutineLeak,
		analysistest.Pkg{Dir: "goroutineleak", Path: analysistest.ModulePath + "/internal/glfix"})
}

func TestChanDisciplineEnforcesOwnership(t *testing.T) {
	analysistest.Run(t, analysis.ChanDiscipline,
		analysistest.Pkg{Dir: "chandiscipline", Path: analysistest.ModulePath + "/internal/cdfix"})
}

func TestWaitSyncEnforcesWaitGroupProtocol(t *testing.T) {
	analysistest.Run(t, analysis.WaitSync,
		analysistest.Pkg{Dir: "waitsync", Path: analysistest.ModulePath + "/internal/wsfix"})
}

func TestLockCycleFlagsOrderInversions(t *testing.T) {
	analysistest.Run(t, analysis.LockCycle,
		analysistest.Pkg{Dir: "lockcycle", Path: analysistest.ModulePath + "/internal/lcfix"})
}

func TestDeferLoopFlagsAccumulatingDefers(t *testing.T) {
	analysistest.Run(t, analysis.DeferLoop,
		analysistest.Pkg{Dir: "deferloop", Path: analysistest.ModulePath + "/internal/dlfix"})
}
