package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// DNAAlphabet forbids ad-hoc nucleotide handling outside internal/dna,
// the single package allowed to know the ASCII alphabet. Two rules:
//
//   - character rule (everywhere except internal/dna, including tests
//     and examples): comparing a byte/rune against 'A', 'C', 'G' or 'T'
//     — via ==, !=, or a switch case — re-implements the alphabet and
//     silently misses lower-case, U and IUPAC codes; go through
//     dna.BaseFromChar / dna.MaskFromChar / dna.Base instead;
//   - literal rule (non-test files of internal packages other than
//     internal/dna): a string literal spelling a DNA sequence
//     (>= 6 characters of ACGTN) must be the direct argument of a
//     dna.Parse*/MustParse* call, not raw data compared or indexed by
//     hand. Test files and package main are exempt: fixtures and the
//     string-typed public API legitimately spell sequences.
var DNAAlphabet = &Analyzer{
	Name: "dnaalphabet",
	Doc: "raw DNA byte comparisons and bare sequence literals are forbidden outside " +
		"internal/dna; use dna.ParsePattern/ParseSeq/Base",
	Run: runDNAAlphabet,
}

var dnaLiteralRe = regexp.MustCompile(`^"[ACGTN]{6,}"$`)

func runDNAAlphabet(pass *Pass) error {
	if pass.InModulePackage("internal/dna") {
		return nil
	}
	checkAlphabetChars(pass)
	if strings.Contains(pass.Pkg.Path, "/internal/") && pass.Pkg.Name != "main" {
		checkDNALiterals(pass)
	}
	return nil
}

func isNucleotideCharLit(e ast.Expr) bool {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.CHAR {
		return false
	}
	switch bl.Value {
	case `'A'`, `'C'`, `'G'`, `'T'`:
		return true
	}
	return false
}

func checkAlphabetChars(pass *Pass) {
	inspect(pass.Pkg.AllFiles(), func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.EQL && x.Op != token.NEQ {
				return true
			}
			for _, side := range []ast.Expr{x.X, x.Y} {
				if isNucleotideCharLit(side) {
					pass.Reportf(x.Pos(), "raw nucleotide comparison against %s: use dna.BaseFromChar/dna.Base (only internal/dna knows the alphabet)",
						side.(*ast.BasicLit).Value)
				}
			}
		case *ast.CaseClause:
			for _, e := range x.List {
				if isNucleotideCharLit(e) {
					pass.Reportf(e.Pos(), "raw nucleotide switch case %s: use dna.BaseFromChar/dna.Base (only internal/dna knows the alphabet)",
						e.(*ast.BasicLit).Value)
				}
			}
		}
		return true
	})
}

// sanctionedDNACall reports whether call is a dna parsing entry point
// (dna.ParseSeq, dna.ParsePattern, dna.MustParseSeq, dna.MustParsePattern).
func sanctionedDNACall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok || x.Name != "dna" {
		return false
	}
	switch sel.Sel.Name {
	case "ParseSeq", "ParsePattern", "MustParseSeq", "MustParsePattern":
		return true
	}
	return false
}

func checkDNALiterals(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		sanctioned := make(map[*ast.BasicLit]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && sanctionedDNACall(call) {
				for _, arg := range call.Args {
					if bl, ok := arg.(*ast.BasicLit); ok {
						sanctioned[bl] = true
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			bl, ok := n.(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING || sanctioned[bl] {
				return true
			}
			if dnaLiteralRe.MatchString(bl.Value) {
				pass.Reportf(bl.Pos(), "raw DNA sequence literal %s: route it through dna.ParseSeq/dna.ParsePattern", bl.Value)
			}
			return true
		})
	}
}
