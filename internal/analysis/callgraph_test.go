package analysis

// Edge-case coverage for the call-graph builder's resolution rules:
// embedded-interface dispatch, method values handed around as function
// arguments (which must stay fail-open), and generic instantiation in
// both implicit and explicit forms. These are the shapes most likely
// to regress silently — resolution errors here surface only as missing
// or spurious interprocedural facts, never as type errors.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCallGraph type-checks one synthetic package and returns its call
// graph.
func buildCallGraph(t *testing.T, src string) *callGraph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cg.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	pkg := &Package{Path: "cgtest/p", Name: f.Name.Name, Files: []*ast.File{f}}
	prog := &Program{ModulePath: "cgtest", Packages: map[string]*Package{"cgtest/p": pkg}}
	if ti := prog.TypeCheck(fset, pkg); ti.Err != nil {
		t.Fatalf("type-checking fixture: %v", ti.Err)
	}
	return prog.callGraphOf(fset)
}

// callKeys flattens the resolved candidate keys of every call site in
// the named function's body.
func callKeys(t *testing.T, cg *callGraph, key string) []string {
	t.Helper()
	n, ok := cg.nodes[key]
	if !ok {
		t.Fatalf("call graph has no node %q; have %d nodes", key, len(cg.nodes))
	}
	var keys []string
	for _, c := range n.calls {
		keys = append(keys, c.keys...)
	}
	return keys
}

func hasKey(keys []string, want string) bool {
	for _, k := range keys {
		if k == want {
			return true
		}
	}
	return false
}

// TestCallGraphEmbeddedInterfaceResolution checks that a call through
// an interface that only inherits the method from an embedded interface
// still resolves to the concrete implementations — and only to types
// implementing the WHOLE outer interface, not every type that happens
// to have a method of that name.
func TestCallGraphEmbeddedInterfaceResolution(t *testing.T) {
	cg := buildCallGraph(t, `package p

type inner interface{ Step() }

type Outer interface {
	inner
	Name() string
}

type impl struct{}

func (impl) Step()        {}
func (impl) Name() string { return "" }

// decoy has Step but not Name: it implements inner, not Outer, so the
// dispatch below must not reach it.
type decoy struct{}

func (decoy) Step() {}

func drive(o Outer) {
	o.Step()
}
`)
	keys := callKeys(t, cg, "cgtest/p.drive")
	if !hasKey(keys, "cgtest/p.(impl).Step") {
		t.Errorf("embedded-interface call did not resolve to impl.Step; candidates: %v", keys)
	}
	if hasKey(keys, "cgtest/p.(decoy).Step") {
		t.Errorf("embedded-interface call over-resolved to decoy.Step (decoy lacks Name): %v", keys)
	}
	if cg.nodes["cgtest/p.drive"].callsUnknown {
		t.Error("interface dispatch marked the caller callsUnknown; it resolved to candidates")
	}
}

// TestCallGraphMethodValueFailOpen checks the deliberate
// under-approximation: a method value passed as a function argument is
// invoked through a *types.Var, so the invoking function is marked
// callsUnknown and the method's acquisitions do NOT flow to the caller
// — fail-open, no spurious facts.
func TestCallGraphMethodValueFailOpen(t *testing.T) {
	cg := buildCallGraph(t, `package p

import "sync"

var mu sync.Mutex

type box struct{}

func (box) locker() {
	mu.Lock()
	mu.Unlock()
}

func apply(f func()) {
	f()
}

func caller(b box) {
	apply(b.locker)
}
`)
	ap, ok := cg.nodes["cgtest/p.apply"]
	if !ok {
		t.Fatal("call graph has no node for apply")
	}
	if !ap.callsUnknown {
		t.Error("invoking a function-typed parameter must mark the node callsUnknown")
	}
	if len(ap.calls) != 0 {
		t.Errorf("f() resolved to %v; function values must resolve to nothing", ap.calls)
	}
	if acq := cg.acquiresOf("cgtest/p.(box).locker"); !acq["cgtest/p.mu"] {
		t.Errorf("locker's direct acquisition missing: %v", acq)
	}
	if acq := cg.acquiresOf("cgtest/p.caller"); acq["cgtest/p.mu"] {
		t.Errorf("caller inherited mu through a method value; must stay fail-open, got %v", acq)
	}
	if cg.noReturnOf("cgtest/p.apply") {
		t.Error("a function with unknown callees must be assumed to return")
	}
}

// TestCallGraphGenericInstantiation checks that calls to a generic
// function resolve to the same key whether instantiated implicitly or
// explicitly (F[T](x) arrives as an IndexExpr callee), that multi-
// type-parameter instantiation resolves too, and that an indexed
// function VALUE (fns[0]()) is still unknown rather than misread as an
// instantiation.
func TestCallGraphGenericInstantiation(t *testing.T) {
	cg := buildCallGraph(t, `package p

func generic[T any](v T) {}

func pair[K comparable, V any](k K, v V) {}

func implicit() {
	generic(1)
}

func explicit() {
	generic[int](2)
}

func multi() {
	pair[string, int]("k", 1)
}

func indexedValue(fns []func()) {
	fns[0]()
}
`)
	for caller, want := range map[string]string{
		"cgtest/p.implicit": "cgtest/p.generic",
		"cgtest/p.explicit": "cgtest/p.generic",
		"cgtest/p.multi":    "cgtest/p.pair",
	} {
		if keys := callKeys(t, cg, caller); !hasKey(keys, want) {
			t.Errorf("%s did not resolve to %s; candidates: %v", caller, want, keys)
		}
		if cg.nodes[caller].callsUnknown {
			t.Errorf("%s marked callsUnknown; instantiation resolved", caller)
		}
	}
	iv, ok := cg.nodes["cgtest/p.indexedValue"]
	if !ok {
		t.Fatal("call graph has no node for indexedValue")
	}
	if !iv.callsUnknown || len(iv.calls) != 0 {
		t.Errorf("fns[0]() must stay an unknown call, got calls=%v unknown=%v", iv.calls, iv.callsUnknown)
	}
}
