package analysis

import (
	"go/ast"
)

// DeferLoop flags a defer statement inside a for or range loop: the
// deferred calls do not run at the end of the iteration, they pile up
// until the whole function returns. In the scan pipeline this is the
// classic descriptor leak — deferring f.Close() inside the
// per-chromosome loop keeps every FASTA handle open until the full
// genome scan finishes. The fix is mechanical: move the loop body into
// its own function (or an immediately-called literal) so the defer runs
// per iteration.
//
// The check is per function: a literal's loops are its own, so a defer
// inside `for { go func(){ defer wg.Done() }() }` is fine — the defer
// belongs to the inner function, not the loop.
//
// Bounded loops that intentionally accumulate a handful of defers can
// say so with //crisprlint:allow deferloop.
var DeferLoop = &Analyzer{
	Name: "deferloop",
	Doc: "no defer inside a for/range loop: deferred calls accumulate until the " +
		"function returns, not per iteration — hoist the loop body into a function",
	Run: runDeferLoop,
}

func runDeferLoop(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkDeferLoop(pass, n.Body)
				}
			case *ast.FuncLit:
				checkDeferLoop(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

func checkDeferLoop(pass *Pass, body *ast.BlockStmt) {
	loops := loopRanges(body)
	if len(loops) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its loops and defers are its own
		case *ast.DeferStmt:
			if inAnyRange(loops, n.Pos()) {
				pass.Reportf(n.Pos(), "defer inside a loop runs at function return, not per iteration: "+
					"deferred calls accumulate across iterations — hoist the loop body into its own function")
			}
		}
		return true
	})
}
