package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestClockGuardFiresInModeledPackages(t *testing.T) {
	analysistest.Run(t, analysis.ClockGuard,
		analysistest.Pkg{Dir: "clockguard/bad", Path: analysistest.ModulePath + "/internal/ap"})
}

func TestClockGuardHonorsAllowDirective(t *testing.T) {
	analysistest.Run(t, analysis.ClockGuard,
		analysistest.Pkg{Dir: "clockguard/allowed", Path: analysistest.ModulePath + "/internal/arch"})
}

func TestClockGuardFiresInMeasuredPackages(t *testing.T) {
	analysistest.Run(t, analysis.ClockGuard,
		analysistest.Pkg{Dir: "clockguard/okmeasured", Path: analysistest.ModulePath + "/internal/hscan"})
}

func TestClockGuardSilentInMetricsPackage(t *testing.T) {
	analysistest.Run(t, analysis.ClockGuard,
		analysistest.Pkg{Dir: "clockguard/okmetrics", Path: analysistest.ModulePath + "/internal/metrics"})
}
