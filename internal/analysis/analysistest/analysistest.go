// Package analysistest runs crisprlint analyzers over fixture packages
// under testdata/src and compares reported diagnostics against `want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only.
//
// A fixture file marks an expected diagnostic with a trailing comment:
//
//	pam[0] == 'T' // want `raw nucleotide comparison`
//
// The backquoted text is a regular expression matched against the
// diagnostic message; several `want` comments may share a line by
// repeating the marker. A fixture line without a marker must produce no
// diagnostic.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
)

// ModulePath is the module identity fixtures are loaded under, so
// path-gated analyzers see realistic import paths.
const ModulePath = "github.com/cap-repro/crisprscan"

// Pkg describes one fixture package: Dir is relative to testdata/src,
// Path is the import path the analyzer should see.
type Pkg struct {
	Dir  string
	Path string
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads every fixture package, applies the analyzer to each, and
// reports unmatched expectations and unexpected diagnostics as test
// errors. The testdata root is resolved relative to the caller's
// working directory (the package under test), i.e. testdata/src.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...Pkg) {
	t.Helper()
	fset := token.NewFileSet()
	prog := &analysis.Program{ModulePath: ModulePath, Packages: make(map[string]*analysis.Package)}
	var expected []*expectation

	for _, spec := range pkgs {
		dir := filepath.Join("testdata", "src", spec.Dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading fixture dir: %v", err)
		}
		pkg := &analysis.Package{Path: spec.Path, Dir: dir}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing fixture %s: %v", path, err)
			}
			if pkg.Name == "" {
				pkg.Name = f.Name.Name
			}
			if strings.HasSuffix(e.Name(), "_test.go") {
				pkg.TestFiles = append(pkg.TestFiles, f)
			} else {
				pkg.Files = append(pkg.Files, f)
			}
			expected = append(expected, collectWants(t, fset, path, f)...)
		}
		prog.Packages[spec.Path] = pkg
	}

	diags, err := analysis.RunAnalyzers(fset, prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expected, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(expected, func(i, j int) bool { return expected[i].line < expected[j].line })
	for _, e := range expected {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, path string, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", path, m[1], err)
				}
				out = append(out, &expectation{
					file: path,
					line: fset.Position(c.Pos()).Line,
					re:   re,
				})
			}
		}
	}
	return out
}

func claim(expected []*expectation, file string, line int, msg string) bool {
	for _, e := range expected {
		if !e.hit && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.hit = true
			return true
		}
	}
	return false
}
