package analysis

import (
	"go/ast"
	"strings"
)

// ClockGuard keeps the modeled platforms analytic. The AP, FPGA and
// iNFAnt2 engines (and the arch package that defines their shared
// timing abstractions) predict device time from published constants;
// reading the host clock inside them would entangle simulation results
// with wall-clock noise and break reproducibility of the paper's
// modeled numbers. time.Now / time.Since are therefore forbidden in
// those packages (tests included — a deterministic model needs no
// clock even under test). The one legitimate exception,
// arch.MeasuredSeconds (the helper the *measured* engines use), carries
// a //crisprlint:allow clockguard directive.
var ClockGuard = &Analyzer{
	Name: "clockguard",
	Doc: "modeled-platform packages (internal/ap, internal/fpga, internal/infant, " +
		"internal/arch) must not read the host clock (time.Now/time.Since)",
	Run: runClockGuard,
}

// clockGuardedPkgs are the module-relative package paths under guard.
var clockGuardedPkgs = []string{
	"internal/ap",
	"internal/fpga",
	"internal/infant",
	"internal/arch",
}

func runClockGuard(pass *Pass) error {
	guarded := false
	for _, suffix := range clockGuardedPkgs {
		if pass.InModulePackage(suffix) {
			guarded = true
			break
		}
	}
	if !guarded {
		return nil
	}
	for _, f := range pass.Pkg.AllFiles() {
		// Only flag uses where `time` really is the stdlib package, not
		// a shadowing local: check the file imports "time" unrenamed.
		if !importsTime(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || x.Name != "time" {
				return true
			}
			if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
				pass.Reportf(sel.Pos(), "time.%s in modeled-platform package %s: analytic timing models must stay deterministic (inject measured values from the caller)",
					sel.Sel.Name, pass.Pkg.Name)
			}
			return true
		})
	}
	return nil
}

func importsTime(f *ast.File) bool {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "time" && imp.Name == nil {
			return true
		}
	}
	return false
}
