package analysis

import (
	"go/ast"
	"strings"
)

// ClockGuard makes internal/metrics the module's single clock
// authority. Raw time.Now / time.Since reads are forbidden everywhere
// else (tests included): measured code must go through
// metrics.Now/Stopwatch/MeasureSeconds so instrumentation and
// benchmarks share one monotonic clock, artifact stamping must use
// metrics.Wall, and the modeled platforms (internal/ap, internal/fpga,
// internal/infant, internal/arch) must stay fully analytic — a clock
// read there would entangle the paper's modeled numbers with
// wall-clock noise. Modeled-platform violations get a sharper message
// because the fix differs (inject measured values from the caller
// rather than switching to the metrics clock). Escape hatch:
// //crisprlint:allow clockguard.
var ClockGuard = &Analyzer{
	Name: "clockguard",
	Doc: "raw time.Now/time.Since is allowed only in internal/metrics, the " +
		"module's clock authority; modeled-platform packages (internal/ap, " +
		"internal/fpga, internal/infant, internal/arch) must stay fully analytic",
	Run: runClockGuard,
}

// clockModeledPkgs are the modeled-platform package paths whose
// violations carry the determinism message.
var clockModeledPkgs = []string{
	"internal/ap",
	"internal/fpga",
	"internal/infant",
	"internal/arch",
}

func runClockGuard(pass *Pass) error {
	// internal/metrics is the one sanctioned clock reader.
	if pass.InModulePackage("internal/metrics") {
		return nil
	}
	modeled := false
	for _, suffix := range clockModeledPkgs {
		if pass.InModulePackage(suffix) {
			modeled = true
			break
		}
	}
	for _, f := range pass.Pkg.AllFiles() {
		// Only flag uses where `time` really is the stdlib package, not
		// a shadowing local: check the file imports "time" unrenamed.
		if !importsTime(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || x.Name != "time" {
				return true
			}
			if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
				return true
			}
			if modeled {
				pass.Reportf(sel.Pos(), "time.%s in modeled-platform package %s: analytic timing models must stay deterministic (inject measured values from the caller)",
					sel.Sel.Name, pass.Pkg.Name)
			} else {
				pass.Reportf(sel.Pos(), "time.%s outside internal/metrics: use metrics.Now/Stopwatch/MeasureSeconds for measurement or metrics.Wall for stamping (package %s)",
					sel.Sel.Name, pass.Pkg.Name)
			}
			return true
		})
	}
	return nil
}

func importsTime(f *ast.File) bool {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "time" && imp.Name == nil {
			return true
		}
	}
	return false
}
