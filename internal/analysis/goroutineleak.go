package analysis

import (
	"go/ast"
)

// GoroutineLeak demands that every `go` statement spawn a goroutine
// with a provable termination path. The check is the interprocedural
// tier's flagship: the spawned body's CFG must have the exit block
// reachable from the entry, where
//
//   - a `for` without condition only contributes an exit through a
//     break/return inside it (label-aware);
//   - a `select` without default only continues through a case body, so
//     a loop whose every select case loops again — and the empty
//     `select{}` — diverges;
//   - `for range ch` terminates when the channel closes, so it counts
//     as a termination path by itself;
//   - a call to a function that itself never returns (computed
//     transitively over the call graph, across packages via serialized
//     facts under the vet protocol) diverges at the call site.
//
// `go f(x)` spawning a declared function or method checks f's own
// termination fact. Unresolvable callees (function values, interface
// methods with several implementations) are assumed to terminate —
// fail-open, a finding needs proof.
//
// What this deliberately does NOT prove: that the termination path is
// ever taken. A receive from a channel nobody closes still leaks; the
// analyzer's contract is the weaker, checkable one — the code must at
// least have a path out (a ctx.Done/stop-channel case, a bounded loop,
// or a closeable range), which is the invariant the scan worker pool
// and admin server goroutines are built around.
//
// Test files are exempt: test goroutines are joined by the test's own
// lifetime and t.Cleanup.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc: "every `go` statement must spawn a goroutine with a reachable termination " +
		"path (return, loop exit, closeable range, or a select case that leaves the " +
		"loop), checked through the call graph for named callees",
	Run: runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) error {
	ti := pass.Types()
	cg := pass.Program.callGraphOf(pass.Fset)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				if !bodyTerminates(fun.Body, ti, cg) {
					pass.Reportf(g.Pos(), "goroutine never terminates: no control path reaches the end of the function literal; "+
						"add a ctx.Done()/stop-channel select case, bound the loop, or range over a closeable channel")
				}
			default:
				keys := resolveGoCallee(cg, ti, g.Call)
				if len(keys) == 1 && cg.noReturnOf(keys[0]) {
					pass.Reportf(g.Pos(), "goroutine runs %s, which never returns: no control path reaches its end; "+
						"give it a termination path (ctx.Done()/stop-channel case, bounded loop, or closeable range)",
						funcDisplayName(pass.Program, keys[0]))
				}
			}
			return true
		})
	}
	return nil
}
