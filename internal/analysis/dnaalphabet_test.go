package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestDNAAlphabetFiresOutsideDNAPackage(t *testing.T) {
	analysistest.Run(t, analysis.DNAAlphabet,
		analysistest.Pkg{Dir: "dnaalphabet/bad", Path: analysistest.ModulePath + "/internal/genome"})
}

func TestDNAAlphabetSilentInsideDNAPackage(t *testing.T) {
	analysistest.Run(t, analysis.DNAAlphabet,
		analysistest.Pkg{Dir: "dnaalphabet/okdna", Path: analysistest.ModulePath + "/internal/dna"})
}

func TestDNAAlphabetLiteralRuleExemptsMain(t *testing.T) {
	analysistest.Run(t, analysis.DNAAlphabet,
		analysistest.Pkg{Dir: "dnaalphabet/okmain", Path: analysistest.ModulePath + "/examples/demo"})
}
