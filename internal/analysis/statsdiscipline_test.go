package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestStatsDisciplineFiresOnUnpopulatedStats(t *testing.T) {
	analysistest.Run(t, analysis.StatsDiscipline,
		analysistest.Pkg{Dir: "statsdiscipline/bad", Path: analysistest.ModulePath + "/internal/core"})
}

func TestStatsDisciplineIgnoresForeignStatsTypes(t *testing.T) {
	analysistest.Run(t, analysis.StatsDiscipline,
		analysistest.Pkg{Dir: "statsdiscipline/okother", Path: analysistest.ModulePath + "/internal/automata"})
}
