package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField catches torn counters: a struct field that is ever
// touched through sync/atomic (atomic.AddInt64(&s.n, 1) and friends)
// must be accessed that way everywhere — a single plain read or write
// elsewhere is a data race that -race only catches when the schedule
// cooperates, and a torn metrics counter silently corrupts the
// throughput numbers the paper's claims rest on.
//
// In the standalone multichecker the index of atomically-touched fields
// is built across the whole module, so a field atomically updated in
// internal/metrics and read plainly in internal/arch is caught; under
// the per-package vet protocol the check degrades to package-local
// pairs, like enginereg's cross-package half.
//
// Fields of the typed atomics (atomic.Int64 and friends) cannot be read
// plainly, but they can be copied wholesale, which tears just the same;
// assignments copying an atomic-typed field value are flagged too (go
// vet's copylocks overlaps here, but only where a noCopy sentinel
// exists).
//
// Test files are exempt: tests read counters after the goroutines they
// spawned are joined, and the suppression noise would drown the signal.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "struct fields touched via sync/atomic must never be read or written " +
		"plainly elsewhere (torn counters); atomic-typed fields must not be copied",
	Run: runAtomicField,
}

// atomicUse records where a field was first atomically accessed, for
// the diagnostic message.
type atomicUse struct {
	fn  string // the sync/atomic function name
	pos string // fset position string of that use
}

// atomicIndex builds (once per Program) the module-wide map from field
// identity (objKey) to its first sync/atomic use.
func (prog *Program) atomicIndex(fset *token.FileSet) map[string]atomicUse {
	st := prog.typeState()
	st.atomicOnce.Do(func() {
		st.atomicIdx = make(map[string]atomicUse)
		for _, pkg := range prog.Packages {
			ti := prog.TypeCheck(fset, pkg)
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fnName, field := atomicCallField(ti, call)
					if field == nil {
						return true
					}
					key := objKey(fset, field)
					if _, seen := st.atomicIdx[key]; !seen {
						st.atomicIdx[key] = atomicUse{
							fn:  fnName,
							pos: fset.Position(call.Pos()).String(),
						}
					}
					return true
				})
			}
		}
	})
	return st.atomicIdx
}

// atomicCallField recognizes atomic.Fn(&x.field, ...) calls and returns
// the sync/atomic function name and the field object, or nil when the
// call is not of that shape.
func atomicCallField(ti *TypeInfo, call *ast.CallExpr) (string, *types.Var) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return "", nil
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", nil
	}
	pn, ok := ti.Info.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", nil
	}
	amp, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || amp.Op != token.AND {
		return "", nil
	}
	fieldSel, ok := amp.X.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	return sel.Sel.Name, fieldVarOf(ti.Info, fieldSel)
}

// isAtomicNamedType reports whether t is one of sync/atomic's typed
// values (atomic.Int64, atomic.Value, ...).
func isAtomicNamedType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func runAtomicField(pass *Pass) error {
	ti := pass.Types()
	idx := pass.Program.atomicIndex(pass.Fset)

	// Selector expressions that ARE the sanctioned atomic access in the
	// current package (the &x.f argument of an atomic call) are exempt.
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, field := atomicCallField(ti, call); field != nil {
				amp := call.Args[0].(*ast.UnaryExpr)
				sanctioned[amp.X.(*ast.SelectorExpr)] = true
			}
			return true
		})
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[n] {
					return true
				}
				field := fieldVarOf(ti.Info, n)
				if field == nil {
					return true
				}
				if use, ok := idx[objKey(pass.Fset, field)]; ok {
					pass.Reportf(n.Pos(), "field %s is accessed atomically (%s at %s) but read or written plainly here: torn access",
						field.Name(), use.fn, use.pos)
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					reportAtomicCopy(pass, ti, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					reportAtomicCopy(pass, ti, v)
				}
			}
			return true
		})
	}
	return nil
}

// reportAtomicCopy flags `v := x.counter` where counter has one of the
// sync/atomic struct types: the copy tears the value and detaches it
// from future updates.
func reportAtomicCopy(pass *Pass, ti *TypeInfo, rhs ast.Expr) {
	sel, ok := rhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	field := fieldVarOf(ti.Info, sel)
	if field == nil || !isAtomicNamedType(field.Type()) {
		return
	}
	pass.Reportf(rhs.Pos(), "copying atomic-typed field %s (%s) tears the value; operate through its methods in place",
		field.Name(), field.Type())
}
