package analysis_test

import (
	"go/token"
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
)

// TestTypeCheckRoundTrip loads a real module package through the
// standalone loader and type-checks it with the source importer: the
// check must be clean, and repeated calls must return the memoized
// result rather than re-checking.
func TestTypeCheckRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("source-importer type check is slow")
	}
	fset := token.NewFileSet()
	prog, err := analysis.Load(fset, ".", "../dna")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	const path = "github.com/cap-repro/crisprscan/internal/dna"
	pkg, ok := prog.Packages[path]
	if !ok {
		t.Fatalf("Load did not resolve %s; got %d packages", path, len(prog.Packages))
	}
	ti := prog.TypeCheck(fset, pkg)
	if ti.Err != nil {
		t.Fatalf("TypeCheck: %v", ti.Err)
	}
	if ti.Pkg == nil || ti.Pkg.Path() != path {
		t.Fatalf("TypeCheck produced package %v, want %s", ti.Pkg, path)
	}
	if ti.Info == nil || len(ti.Info.Defs) == 0 {
		t.Fatal("TypeCheck produced no resolved objects")
	}
	if again := prog.TypeCheck(fset, pkg); again != ti {
		t.Fatal("TypeCheck did not memoize: second call returned a new TypeInfo")
	}
}
