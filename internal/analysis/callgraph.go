package analysis

// This file is the interprocedural tier's foundation: a stdlib-only
// call-graph builder over the Program's type-checked packages, plus the
// per-function facts the concurrency analyzers consume —
//
//   - NoReturn: the function's CFG exit is unreachable from its entry
//     (treating calls to other NoReturn functions as diverging), so a
//     goroutine running it can never finish (goroutineleak);
//   - Acquires: the set of canonical mutex identities the function may
//     take, directly or transitively through its callees (lockcycle);
//   - LockEdges: the lock-order pairs (held → acquired) the function
//     establishes, including acquisitions made by callees while a
//     caller's mutex is held (lockcycle's cross-call deadlock graph).
//
// Call resolution is deliberately conservative in the direction of
// silence (fail-open, like the typed tier's error handling):
//
//   - direct calls and concrete method calls resolve exactly;
//   - interface method calls resolve to every concrete method in the
//     Program with the same name whose receiver implements the
//     interface — an over-approximation for Acquires (extra candidates
//     can only add facts) and an under-approximation for NoReturn
//     (multiple candidates are never treated as diverging);
//   - calls through function values, struct fields, and anything else
//     without a *types.Func resolve to nothing and mark the caller as
//     having unknown callees.
//
// Facts use name-based keys ("pkg/path.Func", "pkg/path.(Recv).Method")
// so they serialize: under the `go vet -vettool` protocol each package
// is analyzed alone, its facts are written to the VetxOutput file the
// go command asks for (JSON — only crisprlint reads them back), and
// imported packages' facts are loaded from PackageVetx. Cross-package
// edges between siblings that do not import each other are only visible
// to the standalone whole-module run, which is why CI runs both modes.

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
	"sync"
)

// FuncFact is the serialized interprocedural summary of one function.
type FuncFact struct {
	// NoReturn marks functions whose exit is unreachable: every control
	// path loops or blocks forever.
	NoReturn bool `json:"noreturn,omitempty"`
	// Acquires lists the canonical mutex identities the function may
	// lock, transitively.
	Acquires []string `json:"acquires,omitempty"`
	// LockEdges lists observed lock-order pairs [held, acquired].
	LockEdges [][2]string `json:"lock_edges,omitempty"`
}

// PackageFacts is the on-disk fact set for one package (the payload of
// a .vetx file under the vet protocol).
type PackageFacts struct {
	Version int                 `json:"version"`
	Funcs   map[string]FuncFact `json:"funcs"`
}

// factsVersion guards the serialized fact format.
const factsVersion = 1

// maxAcquires bounds a single function's transitive acquisition set so
// a pathological module cannot make fact computation quadratic.
const maxAcquires = 64

// cgCall is one resolved call site.
type cgCall struct {
	pos token.Pos
	// keys holds the candidate callee keys: exactly one for static
	// calls, possibly several for interface dispatch.
	keys []string
}

// cgNode is one function in the call graph.
type cgNode struct {
	key  string
	decl *ast.FuncDecl
	pkg  *Package
	ti   *TypeInfo
	// calls are the body's resolved call sites (function literals are
	// opaque: their call sites belong to no node — soundness caveat).
	calls []cgCall
	// callsUnknown is set when the body calls through a function value
	// or other unresolvable callee.
	callsUnknown bool
	// acquired are the body's direct mutex acquisitions.
	acquired []lockSite

	noReturnDone, noReturn bool
	noReturnBusy           bool
	acquiresDone           bool
	acquiresBusy           bool
	acquires               map[string]bool
}

// lockSite is one direct mutex acquisition inside a body.
type lockSite struct {
	id  string
	pos token.Pos
}

// callGraph is the Program-wide (or, under vet, package-local) graph.
type callGraph struct {
	nodes map[string]*cgNode
	// methodsByName supports conservative interface resolution.
	methodsByName map[string][]*cgNode
	// imported facts, loaded lazily per package path under vet.
	factFiles map[string]string
	facts     map[string]*PackageFacts

	// moduleLockEdges is memoized: lockcycle runs once per package but
	// the edge set is a whole-Program property.
	edgesOnce   sync.Once
	moduleEdges []lockEdge
}

// callGraphOf builds (once per Program) the call graph over every
// loaded package's non-test files.
func (prog *Program) callGraphOf(fset *token.FileSet) *callGraph {
	st := prog.typeState()
	st.cgOnce.Do(func() {
		cg := &callGraph{
			nodes:         make(map[string]*cgNode),
			methodsByName: make(map[string][]*cgNode),
			factFiles:     prog.VetFactFiles,
			facts:         make(map[string]*PackageFacts),
		}
		paths := make([]string, 0, len(prog.Packages))
		for path := range prog.Packages {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			pkg := prog.Packages[path]
			ti := prog.TypeCheck(fset, pkg)
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := ti.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					node := &cgNode{key: funcKeyOf(fn), decl: fd, pkg: pkg, ti: ti}
					node.collectBody(cg)
					cg.nodes[node.key] = node
					if fd.Recv != nil {
						cg.methodsByName[fd.Name.Name] = append(cg.methodsByName[fd.Name.Name], node)
					}
				}
			}
		}
		st.cg = cg
	})
	return st.cg
}

// funcKeyOf renders the stable, name-based fact key for a function.
func funcKeyOf(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return pkgPath + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		return pkgPath + ".(?)." + fn.Name()
	}
	return pkgPath + "." + fn.Name()
}

// lockIdentOf canonicalizes the mutex operand of a Lock/RLock call:
// a struct field becomes "pkg/path.(Type).field", a package-level var
// "pkg/path.name". Local mutexes (and anything unresolvable) return
// ok=false — they cannot participate in a module-wide order.
func lockIdentOf(ti *TypeInfo, mu ast.Expr) (string, bool) {
	switch mu := mu.(type) {
	case *ast.SelectorExpr:
		sel, ok := ti.Info.Selections[mu]
		if !ok {
			// Qualified package-level var (pkg.mu).
			if v, ok := ti.Info.Uses[mu.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && isMutexType(v.Type()) {
				if v.Parent() == v.Pkg().Scope() {
					return v.Pkg().Path() + "." + v.Name(), true
				}
			}
			return "", false
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok || !v.IsField() || v.Pkg() == nil || !isMutexType(v.Type()) {
			return "", false
		}
		recv := sel.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return "", false
		}
		return v.Pkg().Path() + ".(" + named.Obj().Name() + ")." + v.Name(), true
	case *ast.Ident:
		v, ok := ti.Info.Uses[mu].(*types.Var)
		if !ok || v.Pkg() == nil || !isMutexType(v.Type()) {
			return "", false
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
		return "", false
	}
	return "", false
}

// collectBody resolves the declaration's call sites and direct mutex
// acquisitions, skipping nested function literals (their bodies run in
// a different calling context; see the package caveats).
func (n *cgNode) collectBody(cg *callGraph) {
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if id, acquire, ok := lockCall(node); ok && id != "" {
				if acquire {
					if sel, isSel := node.Fun.(*ast.SelectorExpr); isSel {
						if lid, lok := lockIdentOf(n.ti, sel.X); lok {
							n.acquired = append(n.acquired, lockSite{id: lid, pos: node.Pos()})
						}
					}
				}
				return true
			}
			keys, unknown := resolveCall(cg, n.ti, node)
			if unknown {
				n.callsUnknown = true
			}
			if len(keys) > 0 {
				n.calls = append(n.calls, cgCall{pos: node.Pos(), keys: keys})
			}
		}
		return true
	})
}

// resolveCall returns the candidate callee keys for a call expression.
// unknown is true when the callee cannot be resolved to any *types.Func
// (function values, fields, built-ins are not unknown — they are known
// to be irrelevant).
func resolveCall(cg *callGraph, ti *TypeInfo, call *ast.CallExpr) (keys []string, unknown bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := ti.Info.Uses[fun].(type) {
		case *types.Func:
			return []string{funcKeyOf(obj)}, false
		case *types.Builtin, *types.TypeName:
			return nil, false // builtin or conversion
		case *types.Var:
			return nil, true // function value
		}
		if _, isDef := ti.Info.Defs[fun]; isDef {
			return nil, true
		}
		return nil, false
	case *ast.IndexExpr:
		// Explicit generic instantiation F[T](...) resolves like F(...);
		// an indexed function value fns[i](...) recurses into the Var
		// case and stays unknown.
		return resolveCall(cg, ti, &ast.CallExpr{Fun: fun.X, Args: call.Args})
	case *ast.IndexListExpr:
		// F[T1, T2](...) with several type arguments.
		return resolveCall(cg, ti, &ast.CallExpr{Fun: fun.X, Args: call.Args})
	case *ast.SelectorExpr:
		if sel, ok := ti.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, true // field of function type
			}
			if types.IsInterface(sel.Recv()) {
				return interfaceCandidates(cg, sel.Recv(), fn.Name()), false
			}
			return []string{funcKeyOf(fn)}, false
		}
		// Qualified identifier pkg.F.
		switch obj := ti.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			return []string{funcKeyOf(obj)}, false
		case *types.Var:
			return nil, true
		case *types.TypeName:
			return nil, false
		}
		return nil, false
	}
	// Immediately-invoked literals, indexed expressions, conversions:
	// treat as unknown unless it is a plain type conversion.
	if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
		return nil, true
	}
	return nil, true
}

// interfaceCandidates returns every concrete method in the graph with
// the given name whose receiver implements the interface.
func interfaceCandidates(cg *callGraph, iface types.Type, name string) []string {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var keys []string
	for _, m := range cg.methodsByName[name] {
		fn, ok := m.ti.Info.Defs[m.decl.Name].(*types.Func)
		if !ok {
			continue
		}
		recv := fn.Type().(*types.Signature).Recv().Type()
		if types.Implements(recv, it) || types.Implements(types.NewPointer(recv), it) {
			keys = append(keys, m.key)
		}
	}
	sort.Strings(keys)
	return keys
}

// importedFact looks up a fact for a function outside the loaded
// Program (vet mode: a dependency whose .vetx file the go command gave
// us). Missing packages or functions degrade to the zero fact.
func (cg *callGraph) importedFact(key string) (FuncFact, bool) {
	dot := strings.LastIndex(key, ".")
	if dot < 0 {
		return FuncFact{}, false
	}
	pkgPath := key[:dot]
	if i := strings.Index(key, ".("); i >= 0 {
		pkgPath = key[:i]
	}
	pf, ok := cg.facts[pkgPath]
	if !ok {
		pf = loadFacts(cg.factFiles[pkgPath])
		cg.facts[pkgPath] = pf
	}
	if pf == nil {
		return FuncFact{}, false
	}
	f, ok := pf.Funcs[key]
	return f, ok
}

// loadFacts reads a serialized fact file, returning nil on any error
// (fail-open: missing facts mean conservative assumptions, not noise).
func loadFacts(path string) *PackageFacts {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var pf PackageFacts
	if err := json.Unmarshal(data, &pf); err != nil || pf.Version != factsVersion {
		return nil
	}
	return &pf
}

// noReturnOf reports whether the function behind key can never return.
// Unresolvable keys and recursion assume the function returns.
func (cg *callGraph) noReturnOf(key string) bool {
	n, ok := cg.nodes[key]
	if !ok {
		f, _ := cg.importedFact(key)
		return f.NoReturn
	}
	if n.noReturnDone {
		return n.noReturn
	}
	if n.noReturnBusy {
		return false // recursion: optimistic (a finding needs proof)
	}
	n.noReturnBusy = true
	n.noReturn = !bodyTerminates(n.decl.Body, n.ti, cg)
	n.noReturnBusy = false
	n.noReturnDone = true
	return n.noReturn
}

// bodyTerminates reports whether a function body has any control path
// to its exit, treating calls to single-candidate NoReturn callees as
// diverging. It is shared between fact computation (FuncDecls) and
// goroutineleak's direct check of `go func(){...}` literals. Nested
// function literals, `go` statements (the spawned goroutine diverging
// does not block the spawner) and deferred calls are skipped.
func bodyTerminates(body *ast.BlockStmt, ti *TypeInfo, cg *callGraph) bool {
	cfg := buildCFG(body)
	return cfg.exitReachable(func(n ast.Node) bool {
		diverges := false
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				keys, _ := resolveCall(cg, ti, n)
				if len(keys) == 1 && cg.noReturnOf(keys[0]) {
					diverges = true
				}
			}
			return true
		})
		return diverges
	})
}

// acquiresOf returns the transitive set of canonical mutex identities
// the function may take. Recursion contributes nothing new; the set is
// size-capped.
func (cg *callGraph) acquiresOf(key string) map[string]bool {
	n, ok := cg.nodes[key]
	if !ok {
		f, _ := cg.importedFact(key)
		out := make(map[string]bool, len(f.Acquires))
		for _, id := range f.Acquires {
			out[id] = true
		}
		return out
	}
	if n.acquiresDone {
		return n.acquires
	}
	if n.acquiresBusy {
		return nil
	}
	n.acquiresBusy = true
	acq := make(map[string]bool)
	for _, s := range n.acquired {
		acq[s.id] = true
	}
	for _, c := range n.calls {
		for _, k := range c.keys {
			for id := range cg.acquiresOf(k) {
				if len(acq) >= maxAcquires {
					break
				}
				acq[id] = true
			}
		}
	}
	n.acquiresBusy = false
	n.acquires = acq
	n.acquiresDone = true
	return acq
}

// EncodeFacts computes and serializes the fact set for one package's
// functions — the vet protocol's .vetx payload.
func EncodeFacts(fset *token.FileSet, prog *Program, pkg *Package) ([]byte, error) {
	cg := prog.callGraphOf(fset)
	pf := PackageFacts{Version: factsVersion, Funcs: make(map[string]FuncFact)}
	for key, n := range cg.nodes {
		if n.pkg != pkg {
			continue
		}
		fact := FuncFact{NoReturn: cg.noReturnOf(key)}
		acq := cg.acquiresOf(key)
		for id := range acq {
			fact.Acquires = append(fact.Acquires, id)
		}
		sort.Strings(fact.Acquires)
		for _, e := range cg.lockEdgesOf(key) {
			fact.LockEdges = append(fact.LockEdges, [2]string{e.held, e.acquired})
		}
		sortEdgePairs(fact.LockEdges)
		if fact.NoReturn || len(fact.Acquires) > 0 || len(fact.LockEdges) > 0 {
			pf.Funcs[key] = fact
		}
	}
	return json.Marshal(&pf)
}

func sortEdgePairs(edges [][2]string) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
}

// lockEdge is one observed ordering: a mutex acquired (directly or via
// a call) while another is held.
type lockEdge struct {
	held, acquired string
	pos            token.Pos // the acquiring site (or call site) in this run's FileSet
	viaCall        string    // non-empty when the acquisition happens inside a callee
}

// lockEdgesOf computes the function's lock-order edges with a must-held
// analysis over its CFG: at every direct acquisition of B and at every
// call that may transitively acquire B, each currently-held A yields an
// edge A→B.
func (cg *callGraph) lockEdgesOf(key string) []lockEdge {
	n, ok := cg.nodes[key]
	if !ok || n.decl.Body == nil {
		return nil
	}
	if len(n.acquired) == 0 && len(n.calls) == 0 {
		return nil
	}
	universe := make(map[string]bool)
	for _, s := range n.acquired {
		universe[s.id] = true
	}
	if len(universe) == 0 {
		return nil // nothing held locally ⇒ no edge can originate here
	}
	cfg := buildCFG(n.decl.Body)
	genKill := func(node ast.Node, held map[string]bool) {
		walkLeaf(node, true, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, acquire, isLock := lockCall(call); isLock {
				if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
					if id, lok := lockIdentOf(n.ti, sel.X); lok {
						if acquire {
							held[id] = true
						} else {
							delete(held, id)
						}
					}
				}
			}
			return true
		})
	}
	var edges []lockEdge
	visit, _ := cfg.mustHeld(universe, genKill)
	visit(func(node ast.Node, held map[string]bool) {
		if len(held) == 0 {
			return
		}
		walkLeaf(node, false, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, acquire, isLock := lockCall(call); isLock {
				if !acquire {
					return true
				}
				sel, isSel := call.Fun.(*ast.SelectorExpr)
				if !isSel {
					return true
				}
				id, lok := lockIdentOf(n.ti, sel.X)
				if !lok {
					return true
				}
				for a := range held {
					if a != id {
						edges = append(edges, lockEdge{held: a, acquired: id, pos: call.Pos()})
					}
				}
				return true
			}
			keys, _ := resolveCall(cg, n.ti, call)
			for _, k := range keys {
				for b := range cg.acquiresOf(k) {
					for a := range held {
						if a != b {
							edges = append(edges, lockEdge{held: a, acquired: b, pos: call.Pos(), viaCall: k})
						}
					}
				}
			}
			return true
		})
	})
	return edges
}

// moduleLockEdges aggregates every function's lock edges (positions
// survive for nodes in the loaded Program; imported facts contribute
// position-less edges used only for path existence). The result is
// computed once per Program.
func (cg *callGraph) moduleLockEdges() []lockEdge {
	cg.edgesOnce.Do(func() {
		cg.moduleEdges = cg.computeModuleLockEdges()
	})
	return cg.moduleEdges
}

func (cg *callGraph) computeModuleLockEdges() []lockEdge {
	keys := make([]string, 0, len(cg.nodes))
	for key := range cg.nodes {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var edges []lockEdge
	for _, key := range keys {
		edges = append(edges, cg.lockEdgesOf(key)...)
	}
	// Fold in edges from imported fact files (vet mode).
	pkgs := make([]string, 0, len(cg.factFiles))
	for p := range cg.factFiles {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		pf, ok := cg.facts[p]
		if !ok {
			pf = loadFacts(cg.factFiles[p])
			cg.facts[p] = pf
		}
		if pf == nil {
			continue
		}
		fkeys := make([]string, 0, len(pf.Funcs))
		for k := range pf.Funcs {
			fkeys = append(fkeys, k)
		}
		sort.Strings(fkeys)
		for _, k := range fkeys {
			for _, e := range pf.Funcs[k].LockEdges {
				edges = append(edges, lockEdge{held: e[0], acquired: e[1], viaCall: k})
			}
		}
	}
	return edges
}

// resolveGoCallee resolves the function a `go` statement spawns, when
// it names a declared function or method (not a literal): the candidate
// keys, or nil.
func resolveGoCallee(cg *callGraph, ti *TypeInfo, call *ast.CallExpr) []string {
	keys, _ := resolveCall(cg, ti, call)
	return keys
}

// funcDisplayName renders a fact key for diagnostics: strip the module
// path prefix so messages stay readable.
func funcDisplayName(prog *Program, key string) string {
	if prog != nil && prog.ModulePath != "" {
		if rest, ok := strings.CutPrefix(key, prog.ModulePath+"/"); ok {
			return rest
		}
		if rest, ok := strings.CutPrefix(key, prog.ModulePath+"."); ok {
			return rest
		}
	}
	return key
}

// lockDisplayName strips the module prefix from a canonical lock id.
func lockDisplayName(prog *Program, id string) string {
	return funcDisplayName(prog, id)
}

// isMutexType reports whether t (or its pointer target) is sync.Mutex
// or sync.RWMutex — the only receivers whose Lock/Unlock calls count as
// mutex operations for the interprocedural tier.
func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
