package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the `go vet -vettool` driver protocol, the same
// contract x/tools' unitchecker speaks, so crisprlint can run inside
// `go vet -vettool=$(which crisprlint) ./...`:
//
//   - `crisprlint -V=full` prints an executable fingerprint the go
//     command uses for build caching (handled in cmd/crisprlint);
//   - `crisprlint -flags` prints the supported analyzer flags as JSON
//     (we expose none, so the empty list);
//   - `crisprlint <pkg>.cfg` analyzes one package described by the JSON
//     config the go command writes, prints findings to stderr, writes
//     the facts file the protocol requires, and exits 2 when there are
//     findings.
//
// The facts file (VetxOutput) carries the interprocedural tier's
// serialized per-function summaries (see callgraph.go): NoReturn,
// transitive mutex acquisitions, and lock-order edges. The go command
// hands the dependencies' fact files back in PackageVetx, so
// goroutineleak and lockcycle reach conclusions across package
// boundaries even though each vet invocation sees one package.
//
// In this mode each package is still analyzed in isolation, so
// enginereg's cross-package re-export check is skipped, and lock-order
// edges between sibling packages that do not import each other stay
// invisible; the standalone multichecker (and CI) covers both.

// VetConfig mirrors the fields of the go command's vet config file that
// the driver consumes. Unknown fields are ignored.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	ModulePath                string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// exportDataImporter resolves imports from the export data the go
// command enumerated in the vet config: ImportMap canonicalizes the
// import path, PackageFile locates its compiled export file, and the
// stdlib gc importer decodes it. This is exactly how x/tools'
// unitchecker typechecks, minus fact propagation.
func exportDataImporter(fset *token.FileSet, cfg *VetConfig) types.Importer {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	underlying := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no package file for %q in vet config", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return underlying.Import(importPath)
	})
}

// RunVetUnit executes the analyzers for one vet config file and returns
// the number of diagnostics printed to w.
func RunVetUnit(cfgPath string, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, fmt.Errorf("analysis: reading vet config: %w", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("analysis: parsing vet config %s: %w", cfgPath, err)
	}

	// ImportPath for test variants looks like "pkg [pkg.test]" or
	// "pkg_test [pkg.test]"; strip the bracketed suffix for gating.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}

	fset := token.NewFileSet()
	pkg := &Package{Path: importPath, Dir: cfg.Dir, Generated: make(map[string]bool)}
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parseOne(fset, name)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		if ast.IsGenerated(f) {
			pkg.Generated[name] = true
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	prog := &Program{
		ModulePath:   cfg.ModulePath,
		Packages:     map[string]*Package{importPath: pkg},
		VetFactFiles: cfg.PackageVetx,
	}
	if len(cfg.PackageFile) > 0 {
		prog.VetImporter = exportDataImporter(fset, &cfg)
	}

	// The facts file must exist (the go command caches it and treats a
	// missing file as a failure). Its payload is the interprocedural
	// tier's per-function summary for this package; fact computation
	// errors degrade to an empty file, never to a failed build.
	if cfg.VetxOutput != "" {
		facts, err := EncodeFacts(fset, prog, pkg)
		if err != nil {
			facts = []byte{}
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			return 0, fmt.Errorf("analysis: writing facts file: %w", err)
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	diags, err := RunAnalyzers(fset, prog, All())
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	return len(diags), nil
}
