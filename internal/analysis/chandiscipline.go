package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ChanDiscipline enforces channel send/close ownership, the discipline
// "close only by the owning sender, and never race a send against a
// close". Four rules, all per function body (declarations and each
// function literal independently — a literal's channel context is its
// own):
//
//   - send-after-close: a send reachable after a close of the same
//     channel on SOME path (forward may-analysis) panics at runtime;
//   - double close: a close reachable after a close of the same channel
//     panics too;
//   - close by a non-sender: a function that closes a data channel
//     (element type other than struct{} — signal channels broadcast by
//     closing and are exempt) it did not create and never sends on is
//     not the owning sender; closing from the receive side races every
//     sender;
//   - send on an unbuffered channel created in the same function while
//     a mutex is held (must-analysis): the send blocks until a receiver
//     is ready, and a receiver that needs the same mutex deadlocks.
//
// Reassigning the channel variable (ch = make(...)) kills the closed
// fact. Channels are tracked by expression identity (the printed
// receiver, as lockorder does for mutexes), so p.ch and q.ch are
// distinct.
//
// Test files are exempt: tests orchestrate channels in ways the
// discipline intentionally forbids in library code (closing from the
// consumer to unblock a helper, for instance).
var ChanDiscipline = &Analyzer{
	Name: "chandiscipline",
	Doc: "no send or close after a close of the same channel on any path, no close " +
		"of a data channel by a function that never sends on it, and no send on an " +
		"unbuffered channel while holding a mutex",
	Run: runChanDiscipline,
}

func runChanDiscipline(pass *Pass) error {
	ti := pass.Types()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkChanBody(pass, ti, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkChanBody(pass, ti, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// closeTarget decomposes a builtin close(ch) call.
func closeTarget(ti *TypeInfo, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil, false
	}
	if _, isBuiltin := ti.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	return call.Args[0], true
}

// chanElemType resolves the element type of a channel expression, nil
// when type information is missing.
func chanElemType(ti *TypeInfo, ch ast.Expr) types.Type {
	tv, ok := ti.Info.Types[ch]
	if !ok {
		return nil
	}
	c, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return nil
	}
	return c.Elem()
}

// isStructEmpty reports whether t is struct{} (the signal-channel
// element type).
func isStructEmpty(t types.Type) bool {
	s, ok := t.Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}

// unbufferedMake reports whether rhs is make(chan T) with no capacity
// or a literal zero capacity.
func unbufferedMake(ti *TypeInfo, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := ti.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	if _, isChan := chanTypeOfArg(ti, call.Args[0]); !isChan {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

func chanTypeOfArg(ti *TypeInfo, arg ast.Expr) (*types.Chan, bool) {
	tv, ok := ti.Info.Types[arg]
	if !ok {
		return nil, false
	}
	c, ok := tv.Type.Underlying().(*types.Chan)
	return c, ok
}

// chanBodyFacts is the per-body inventory one walk collects.
type chanBodyFacts struct {
	sends      map[string]bool // channel keys sent on
	closes     map[string][]*ast.CallExpr
	made       map[string]bool // channel keys created by make in this body
	unbuffered map[string]bool // subset of made with no buffer
}

// collectChanFacts inventories the body, skipping nested literals.
func collectChanFacts(ti *TypeInfo, body *ast.BlockStmt) chanBodyFacts {
	facts := chanBodyFacts{
		sends:      make(map[string]bool),
		closes:     make(map[string][]*ast.CallExpr),
		made:       make(map[string]bool),
		unbuffered: make(map[string]bool),
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == nil // never; skip nested literals
		case *ast.SendStmt:
			facts.sends[types.ExprString(n.Chan)] = true
		case *ast.CallExpr:
			if ch, ok := closeTarget(ti, n); ok {
				key := types.ExprString(ch)
				facts.closes[key] = append(facts.closes[key], n)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if _, isChan := chanTypeOfArg(ti, rhs); !isChan {
					continue
				}
				key := types.ExprString(n.Lhs[i])
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
						facts.made[key] = true
						if unbufferedMake(ti, rhs) {
							facts.unbuffered[key] = true
						}
					}
				}
			}
		}
		return true
	})
	return facts
}

func checkChanBody(pass *Pass, ti *TypeInfo, body *ast.BlockStmt) {
	facts := collectChanFacts(ti, body)
	if len(facts.closes) == 0 && len(facts.unbuffered) == 0 {
		return
	}

	// Rule: close by a non-sender (whole-body, flow-insensitive).
	for key, calls := range facts.closes {
		if facts.sends[key] || facts.made[key] {
			continue
		}
		for _, call := range calls {
			elem := chanElemType(ti, call.Args[0])
			if elem == nil || isStructEmpty(elem) {
				continue // signal channel: closing IS the send
			}
			pass.Reportf(call.Pos(), "channel %s is closed here but this function never sends on it: "+
				"close belongs to the owning sender (receive-side closes race every sender)", types.ExprString(call.Args[0]))
		}
	}

	cfg := buildCFG(body)

	// May-analysis: "closed:<key>" after a close, killed by remake.
	if len(facts.closes) > 0 {
		genKill := func(n ast.Node, fs map[string]bool) {
			chanLeafWalk(n, func(n ast.Node) {
				switch n := n.(type) {
				case *ast.CallExpr:
					if ch, ok := closeTarget(ti, n); ok {
						fs["closed:"+types.ExprString(ch)] = true
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						delete(fs, "closed:"+types.ExprString(lhs))
					}
				}
			})
		}
		visit, _ := cfg.mayHold(genKill)
		visit(func(n ast.Node, fs map[string]bool) {
			chanLeafWalk(n, func(n ast.Node) {
				switch n := n.(type) {
				case *ast.SendStmt:
					key := types.ExprString(n.Chan)
					if fs["closed:"+key] {
						pass.Reportf(n.Pos(), "send on %s may follow close(%s): send on a closed channel panics", key, key)
					}
				case *ast.CallExpr:
					if ch, ok := closeTarget(ti, n); ok {
						key := types.ExprString(ch)
						if fs["closed:"+key] {
							pass.Reportf(n.Pos(), "%s may already be closed here: closing a closed channel panics", key)
						}
					}
				}
			})
		})
	}

	// Must-analysis: mutexes held at sends on locally-made unbuffered
	// channels.
	if len(facts.unbuffered) > 0 {
		universe := make(map[string]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if key, acquire, ok := lockCall(call); ok && acquire {
					universe[key] = true
				}
			}
			return true
		})
		if len(universe) > 0 {
			genKill := func(n ast.Node, held map[string]bool) {
				walkLeaf(n, true, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if key, acquire, ok := lockCall(call); ok {
							if acquire {
								held[key] = true
							} else {
								delete(held, key)
							}
						}
					}
					return true
				})
			}
			visit, _ := cfg.mustHeld(universe, genKill)
			visit(func(n ast.Node, held map[string]bool) {
				if len(held) == 0 {
					return
				}
				chanLeafWalk(n, func(n ast.Node) {
					send, ok := n.(*ast.SendStmt)
					if !ok {
						return
					}
					key := types.ExprString(send.Chan)
					if !facts.unbuffered[key] {
						return
					}
					mus := make([]string, 0, len(held))
					for mu := range held {
						mus = append(mus, mu)
					}
					sort.Strings(mus)
					pass.Reportf(send.Pos(), "send on unbuffered channel %s while holding %s blocks until a receiver is ready; "+
						"a receiver needing the same mutex deadlocks — buffer the channel or release the lock first",
						key, strings.Join(mus, ", "))
				})
			})
		}
	}
}

// chanLeafWalk visits a CFG leaf's nodes, skipping nested function
// literals (their channel context is their own).
func chanLeafWalk(n ast.Node, visit func(n ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
