package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestBoundsHintFixture(t *testing.T) {
	analysistest.Run(t, analysis.BoundsHint,
		analysistest.Pkg{Dir: "boundshint", Path: analysistest.ModulePath + "/internal/bhfix"})
}
