// Fixture: internal/dna is the one package allowed to know the ASCII
// alphabet; nothing here may be flagged.
package dna

var charFromBase = [4]byte{'A', 'C', 'G', 'T'}

func baseOf(b byte) int {
	if b == 'A' {
		return 0
	}
	switch b {
	case 'C':
		return 1
	case 'G':
		return 2
	case 'T':
		return 3
	}
	return -1
}

var canonical = "ACGTACGTAC"
