// Fixture: package main consumes the string-typed public API, so bare
// sequence literals are fine there — but raw comparisons are not.
package main

var spacer = "GACGCATAAAGATGAGACGC" // literal rule exempts package main

func isT(b byte) bool {
	return b == 'T' // want `raw nucleotide comparison against 'T'`
}

func main() {}
