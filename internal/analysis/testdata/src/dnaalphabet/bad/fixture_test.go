// Fixture: test files may spell sequence literals (fixtures), but raw
// nucleotide comparisons stay forbidden even in tests.
package genome

var testMotif = "ACGTACGTACGT" // literal rule exempts _test.go files

func isA(b byte) bool {
	return b == 'A' // want `raw nucleotide comparison against 'A'`
}
