// Fixture: raw alphabet handling outside internal/dna.
package genome

import "github.com/cap-repro/crisprscan/internal/dna"

func classify(b byte) int {
	if b == 'A' { // want `raw nucleotide comparison against 'A'`
		return 0
	}
	if 'T' != b { // want `raw nucleotide comparison against 'T'`
		return 1
	}
	switch b {
	case 'G': // want `raw nucleotide switch case 'G'`
		return 2
	case '>', '-': // non-nucleotide cases are fine
		return 3
	}
	return -1
}

// A bare sequence literal must go through the dna package.
var motif = "ACGTACGTAC" // want `raw DNA sequence literal "ACGTACGTAC"`

// Sanctioned: literals feeding the dna parsing entry points.
var parsed = dna.MustParseSeq("ACGTACGTAC")
var pattern, _ = dna.ParsePattern("ACGTNNGG")

// Short IUPAC fragments (PAMs) are allowed raw: they are below the
// literal-rule length threshold and routinely live in Params fields.
var pam = "NGG"
