// Package lockcycle exercises the lockcycle analyzer: the module-wide
// lock-order graph over canonical mutex identities must be acyclic,
// with edges contributed both by direct nested acquisitions and by
// calls to functions that acquire transitively.
package lockcycle

import "sync"

var muA sync.Mutex
var muB sync.Mutex

// abOrder establishes A→B through a call: lockB acquires muB while
// this function holds muA.
func abOrder() {
	muA.Lock()
	lockB() // want `lock-order cycle: internal/lcfix\.muB is acquired here while internal/lcfix\.muA is held \(through the call to internal/lcfix\.lockB\)`
	muA.Unlock()
}

func lockB() {
	muB.Lock()
	muB.Unlock()
}

// baOrder inverts the order directly: B held, A acquired.
func baOrder() {
	muB.Lock()
	muA.Lock() // want `lock-order cycle: internal/lcfix\.muA is acquired here while internal/lcfix\.muB is held`
	muA.Unlock()
	muB.Unlock()
}

// A second pair ordered consistently everywhere stays silent.
var muC sync.Mutex
var muD sync.Mutex

func cdOrder() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func cdAgain() {
	muC.Lock()
	lockD()
	muC.Unlock()
}

func lockD() {
	muD.Lock()
	muD.Unlock()
}

// Local mutexes cannot be contended across functions and never join
// the module graph.
func locals() {
	var a, b sync.Mutex
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

// releasedFirst provably drops muB before taking muA: the must-held
// analysis contributes no B→A edge for it... but baOrder already did.
// What it shows is that an acquisition with nothing held is silent.
func releasedFirst() {
	muB.Lock()
	muB.Unlock()
	muA.Lock()
	muA.Unlock()
}
