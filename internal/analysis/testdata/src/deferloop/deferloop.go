// Package deferloop exercises the deferloop analyzer: a defer inside a
// for/range loop accumulates until function return; hoisting the loop
// body into its own function scopes the defer to one iteration.
package deferloop

type res struct{}

func (res) Close() error { return nil }

func open(string) res { return res{} }

// leak keeps every handle open until the whole function returns.
func leak(paths []string) {
	for _, p := range paths {
		f := open(p)
		defer f.Close() // want `defer inside a loop runs at function return`
	}
}

// hoisted scopes each defer to its own immediately-invoked literal.
func hoisted(paths []string) {
	for _, p := range paths {
		func() {
			f := open(p)
			defer f.Close()
		}()
	}
}

// topLevel defers outside any loop.
func topLevel() {
	f := open("x")
	defer f.Close()
}

// inLit: the loop lives inside a function literal; the defer inside it
// is still per-literal-invocation, not per-iteration.
func inLit() {
	go func() {
		for i := 0; i < 3; i++ {
			f := open("x")
			defer f.Close() // want `defer inside a loop runs at function return`
		}
	}()
}

// goroutinePerIteration is the worker-pool idiom: the defer belongs to
// the spawned function, not the loop.
func goroutinePerIteration(paths []string, done func()) {
	for range paths {
		go func() {
			defer done()
		}()
	}
}
