// Package atomicfield exercises the atomicfield analyzer: fields
// touched via sync/atomic anywhere must never be accessed plainly, and
// typed-atomic fields must not be copied.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  int64
	cold  int64
	typed atomic.Int64
}

// bump is the sanctioned atomic path; its own &c.hits argument is not a
// plain access.
func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

// readTorn reads the atomically-updated field without sync/atomic.
func readTorn(c *counters) int64 {
	return c.hits // want `field hits is accessed atomically \(AddInt64 at .*\) but read or written plainly here: torn access`
}

// writeTorn writes it plainly.
func writeTorn(c *counters) {
	c.hits = 0 // want `field hits is accessed atomically .* torn access`
}

// readSanctioned loads through sync/atomic: fine.
func readSanctioned(c *counters) int64 {
	return atomic.LoadInt64(&c.hits)
}

// coldField is never touched atomically, so plain access is fine.
func coldField(c *counters) int64 {
	c.cold++
	return c.cold
}

// copyTyped copies an atomic.Int64 by value, tearing it.
func copyTyped(c *counters) int64 {
	v := c.typed // want `copying atomic-typed field typed \(sync/atomic\.Int64\) tears the value`
	return v.Load()
}

// useTyped operates through the methods in place: fine.
func useTyped(c *counters) int64 {
	c.typed.Add(1)
	return c.typed.Load()
}
