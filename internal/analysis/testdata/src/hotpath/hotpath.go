// Package hotpath exercises the hotpath analyzer: allocating constructs
// inside //crisprlint:hotpath functions are flagged, with per-iteration
// and per-invocation messages distinguished; unannotated functions are
// never flagged.
package hotpath

import "fmt"

type report struct {
	code int32
	end  int
}

type sink interface{ consume(r report) }

func eat(v interface{}) { _ = v }

// kernel is the annotated scan kernel every construct lands in.
//
//crisprlint:hotpath
func kernel(seq []byte, out *[]report, s sink, n int) {
	m := make([]int64, n) // want `make allocates on every invocation`
	_ = m
	p := new(report) // want `new allocates on every invocation`
	_ = p
	lut := map[byte]int{'A': 0} // want `map/slice composite literal allocates on every invocation`
	_ = lut
	codes := []int{1, 2, 3} // want `map/slice composite literal allocates on every invocation`
	_ = codes
	rp := &report{} // want `pointer composite literal allocates on every invocation`
	_ = rp
	defer fmt.Println("done") // want `defer allocates a frame record on every invocation`
	for i := range seq {
		label := "pos" + string(rune(i)) // want `string concatenation allocates on every loop iteration`
		_ = label
		f := func() int { return i } // want `closure literal allocates on every loop iteration`
		_ = f
		go eat(i)     // want `goroutine launch allocates a stack on every loop iteration` // want `passing int as interface\{\} boxes the value on every loop iteration`
		eat(i)        // want `passing int as interface\{\} boxes the value on every loop iteration`
		v := any(i)   // want `conversion to .* boxes its operand on every loop iteration`
		_ = v
		*out = append(*out, report{end: i}) // want `append may grow a non-preallocated slice on every loop iteration`
	}
}

// preallocated shows the sanctioned shapes: append into a slice made
// with explicit capacity or nonzero length, or into an explicit
// buf[:0] reuse, is not a growth hazard (the make itself is still
// flagged as a per-invocation cost to hoist).
//
//crisprlint:hotpath
func preallocated(seq []byte) int {
	buf := make([]int, 0, len(seq)) // want `make allocates on every invocation`
	sized := make([]int, 8)         // want `make allocates on every invocation`
	for i := range seq {
		buf = append(buf, i)
		sized = append(sized, i)
		buf = append(buf[:0], i)
	}
	return len(buf) + len(sized)
}

// pointerShaped values are stored directly in the interface word, so no
// boxing is reported; forwarding a variadic slice likewise.
//
//crisprlint:hotpath
func pointerShaped(r *report, args []interface{}) {
	eat(r)
	_ = fmt.Sprint(args...)
}

// closures marked on the line above are hot too.
func marked(seq []byte, out *[]report) func() {
	//crisprlint:hotpath
	return func() {
		for range seq {
			_ = new(report) // want `new allocates on every loop iteration`
		}
	}
}

// conversions shows the string<->[]byte rules: copying conversions are
// flagged; the compiler-elided forms (map-lookup key, comparison,
// len, range header, switch tag) are exempt; a map-store key still
// copies and is flagged.
//
//crisprlint:hotpath
func conversions(b []byte, s string, m map[string]int, seq []byte) int {
	acc := 0
	for range seq {
		k := string(b) // want `conversion \[\]byte to string copies its operand on every loop iteration`
		_ = k
		bs := []byte(s) // want `conversion string to \[\]byte copies its operand on every loop iteration`
		_ = bs
		rs := []rune(s) // want `conversion string to \[\]rune copies its operand on every loop iteration`
		_ = rs
		acc += m[string(b)] // map lookup key: elided, no copy
		m[string(b)] = acc  // want `conversion \[\]byte to string copies its operand on every loop iteration`
		if string(b) == s { // comparison operand: elided
			acc++
		}
		acc += len(string(b)) // len of a conversion: elided
		for range string(b) { // range header: elided
			acc++
		}
		switch string(b) { // switch tag: elided
		case s:
			acc++
		}
	}
	return acc
}

// cold is unannotated: the same constructs produce nothing.
func cold(seq []byte) []report {
	var out []report
	for i := range seq {
		out = append(out, report{end: i})
	}
	eat(len(out))
	return out
}
