// Fixture: the //crisprlint:allow directive suppresses clockguard on
// its own line and on the line below.
package arch

import "time"

// MeasuredSeconds is the sanctioned wall-clock helper.
func MeasuredSeconds(fn func() error) (float64, error) {
	start := time.Now() //crisprlint:allow clockguard measured-engine helper
	err := fn()
	//crisprlint:allow clockguard measured-engine helper
	return time.Since(start).Seconds(), err
}

func unguardedUse() time.Time {
	return time.Now() // want `time.Now in modeled-platform package arch`
}
