// Fixture: internal/metrics is the one sanctioned clock reader — the
// guard is silent here no matter how the clock is used.
package metrics

import "time"

var clockBase = time.Now()

func now() int64 { return int64(time.Since(clockBase)) }

func wall() time.Time { return time.Now() }
