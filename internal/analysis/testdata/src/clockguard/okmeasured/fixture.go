// Fixture: since the metrics subsystem became the module's clock
// authority, even measured-engine packages may not read the host clock
// directly — timing goes through metrics.Now/Stopwatch/MeasureSeconds.
package hscan

import "time"

func scanSeconds(fn func()) float64 {
	start := time.Now() // want `time.Now outside internal/metrics`
	fn()
	return time.Since(start).Seconds() // want `time.Since outside internal/metrics`
}

// Deterministic uses of the time package (constants, conversions,
// formatting) remain legal everywhere.
func timeout() time.Duration {
	return 5 * time.Second
}
