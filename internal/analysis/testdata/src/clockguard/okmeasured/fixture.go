// Fixture: measured-engine packages may read the clock freely.
package hscan

import "time"

func scanSeconds(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}
