// Fixture: host-clock reads inside a modeled-platform package.
package ap

import "time"

func kernelSeconds(inputLen int) float64 {
	start := time.Now() // want `time.Now in modeled-platform package ap`
	_ = start
	return float64(inputLen) / 1e9
}

func drift(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in modeled-platform package ap`
}

// Deterministic uses of the time package (unit conversion, constant
// durations) stay legal.
func format(sec float64) string {
	return time.Duration(sec * float64(time.Second)).String()
}
