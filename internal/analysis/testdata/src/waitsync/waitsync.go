// Package waitsync exercises the waitsync analyzer: Add before the go
// statement, Done reachable on every path of a goroutine that uses it,
// and no Wait inside a goroutine that Dones the same group.
package waitsync

import "sync"

func cond() bool { return false }

// pool is the canonical shape: Add in the spawner, deferred Done first.
func pool(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// addInside moves the Add into the goroutine: Wait may observe a zero
// counter before the goroutine has run.
func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `wg\.Add inside the spawned goroutine races with wg\.Wait`
		defer wg.Done()
	}()
	wg.Wait()
}

// skipDone returns early on one path without calling Done.
func skipDone(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() { // want `goroutine calls wg\.Done but some path to its exit skips it`
			if cond() {
				return
			}
			wg.Done()
		}()
	}
	wg.Wait()
}

// selfWait waits on the group whose Done it still owes.
func selfWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Wait() // want `wg\.Wait inside a goroutine that calls wg\.Done waits on itself`
	}()
	wg.Wait()
}

// lateDefer registers the Done after a conditional return: the early
// path skips it.
func lateDefer() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine calls wg\.Done but some path to its exit skips it`
		if cond() {
			return
		}
		defer wg.Done()
	}()
	wg.Wait()
}

// otherGroups: Wait on a different group is not a self-wait.
func otherGroups() {
	var outer, inner sync.WaitGroup
	outer.Add(1)
	inner.Add(1)
	go func() { inner.Done() }()
	go func() {
		defer outer.Done()
		inner.Wait()
	}()
	outer.Wait()
}
