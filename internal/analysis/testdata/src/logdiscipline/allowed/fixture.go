// Fixture: the escape hatch silences an acknowledged terminal write,
// and a renamed import is never mistaken for the stdlib package.
package debugdump

import (
	"fmt"
	"os"
)

// dump is a last-resort debugging aid kept behind an allow directive.
func dump(state string) {
	//crisprlint:allow logdiscipline debugging aid, removed before release
	fmt.Fprintln(os.Stderr, state)
}

// localPrinter shadows the log package name with a local; calls through
// it must not be flagged.
type localPrinter struct{}

func (localPrinter) Printf(string, ...any) {}

func use(p localPrinter) {
	log := p
	log.Printf("not the stdlib logger")
}
