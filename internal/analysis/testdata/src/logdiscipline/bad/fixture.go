// Fixture: terminal writes inside an internal library package.
package core

import (
	"fmt"
	"log"
	"os"
)

func scan(n int) error {
	fmt.Println("scanning", n)          // want `fmt.Println in library package core`
	fmt.Printf("progress %d%%\n", n)    // want `fmt.Printf in library package core`
	log.Printf("chrom %d done", n)      // want `log.Printf in library package core`
	fmt.Fprintf(os.Stderr, "oops %d", n) // want `os.Stderr in library package core`
	if n < 0 {
		log.Fatalf("bad n %d", n) // want `log.Fatalf in library package core`
	}
	// Formatting and error construction stay legal: the rule is about
	// claiming the terminal, not about the fmt package.
	msg := fmt.Sprintf("n=%d", n)
	return fmt.Errorf("scan failed: %s", msg)
}
