// Fixture: command packages own the process and may print freely.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("offtarget starting")
	fmt.Fprintln(os.Stderr, "a command may talk to its terminal")
}
