// Package spanendfix exercises the spanend analyzer: end functions
// returned by the metrics span/phase starters must be called or
// deferred on every path, unless they escape to a caller.
package spanendfix

import (
	"github.com/cap-repro/crisprscan/internal/metrics"
)

func cond() bool { return false }

func runLater(f func()) { f() }

// straightLine is the simplest compliant shape.
func straightLine(tr *metrics.SpanTracer) {
	end := tr.StartSpan("phase")
	end()
}

// deferredEnd closes at exit on every path.
func deferredEnd(tr *metrics.SpanTracer) {
	_, end := tr.StartChild("phase")
	defer end()
	if cond() {
		return
	}
}

// immediate invocation is a zero-width span; fine.
func immediate(tr *metrics.SpanTracer) {
	tr.StartSpan("phase")()
}

// deferStartAndEnd is the idiomatic one-liner: start now, end at exit.
func deferStartAndEnd(rec *metrics.Recorder) {
	defer rec.TraceSpan("phase")()
}

// discarded drops the end function on the floor.
func discarded(tr *metrics.SpanTracer) {
	tr.StartSpan("phase") // want `result of tr\.StartSpan is discarded`
}

// discardedBlank is the same leak spelled with the blank identifier.
func discardedBlank(tr *metrics.SpanTracer) {
	_ = tr.StartSpan("phase") // want `result of tr\.StartSpan is discarded`
}

// discardedChildEnd keeps the span but drops its end.
func discardedChildEnd(tr *metrics.SpanTracer) {
	sp, _ := tr.StartChild("phase") // want `result of tr\.StartChild is discarded`
	sp.SetAttr("k", "v")
}

// deferredStart runs the START at exit and never the end.
func deferredStart(tr *metrics.SpanTracer) {
	defer tr.StartSpan("phase") // want `defer evaluates tr\.StartSpan at function exit`
}

// earlyReturnLeaks skips the end on the error path.
func earlyReturnLeaks(tr *metrics.SpanTracer) {
	end := tr.StartSpan("phase") // want `end function end is not called \(or deferred\) on every path`
	if cond() {
		return
	}
	end()
}

// switchLeaks misses the implicit no-match path (no default clause).
func switchLeaks(tr *metrics.SpanTracer, n int) {
	end := tr.StartSpan("phase") // want `end function end is not called \(or deferred\) on every path`
	switch n {
	case 0:
		end()
	}
}

// bothBranches ends on every explicit path; no finding.
func bothBranches(tr *metrics.SpanTracer) {
	end := tr.StartSpan("phase")
	if cond() {
		end()
		return
	}
	end()
}

// loopBody opens and closes per iteration; no finding.
func loopBody(tr *metrics.SpanTracer, names []string) {
	for _, name := range names {
		end := tr.StartSpan(name)
		end()
	}
}

// loopLeaks opens per iteration but only conditionally closes.
func loopLeaks(tr *metrics.SpanTracer, names []string) {
	for _, name := range names {
		end := tr.StartSpan(name) // want `end function end is not called \(or deferred\) on every path`
		if cond() {
			end()
		}
	}
}

// escapeReturned transfers the obligation to the caller; exempt.
func escapeReturned(tr *metrics.SpanTracer) func() {
	end := tr.StartSpan("phase")
	return end
}

// escapeArgument hands the end function to another callee; exempt.
func escapeArgument(tr *metrics.SpanTracer) {
	end := tr.StartSpan("phase")
	runLater(end)
}

// escapeCapture lets a closure own the close; exempt.
func escapeCapture(tr *metrics.SpanTracer) func() {
	end := tr.StartSpan("phase")
	return func() { end() }
}

// holder models the jobTrace.queueEnd hand-off: a field store escapes.
type holder struct {
	end func()
}

func escapeField(tr *metrics.SpanTracer, h *holder) {
	end := tr.StartSpan("phase")
	h.end = end
}

// recorderPhases covers the Recorder starters.
func recorderPhases(rec *metrics.Recorder) {
	endLoad := rec.StartPhase(metrics.PhaseLoad)
	endLoad()
	rec.StartChunk("chr1", 1024) // want `result of rec\.StartChunk is discarded`
	endChunk := rec.StartChunk("chr2", 2048)
	endChunk()
}

// spanChild tracks Span.StartChild the same as the tracer's.
func spanChild(sp *metrics.Span) {
	_, end := sp.StartChild("phase") // want `end function end is not called \(or deferred\) on every path`
	if cond() {
		end()
	}
}

// unrelated same-name methods on foreign types stay invisible.
type otherStarter struct{}

func (otherStarter) StartSpan(name string) func() { return func() {} }

func foreign(o otherStarter) {
	o.StartSpan("phase")
}

// literals are checked independently: the outer function is clean, the
// closure leaks.
func insideLiteral(tr *metrics.SpanTracer) func() {
	return func() {
		end := tr.StartSpan("phase") // want `end function end is not called \(or deferred\) on every path`
		if cond() {
			end()
		}
	}
}
