// Fixture: a Stats type in a package other than internal/core (the
// automata simulator has its own) is not subject to the discipline.
package automata

type Stats struct {
	States int
}

func snapshot(n int) Stats {
	return Stats{States: n}
}
