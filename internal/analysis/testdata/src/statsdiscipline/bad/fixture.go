// Fixture: Stats construction paths that forget measured fields.
package core

type Stats struct {
	Engine       string
	ElapsedSec   float64
	Events       int
	BytesScanned int
}

// searchMissingOne builds the literal all at once but drops the byte
// counter.
func searchMissingOne(name string, elapsed float64, events int) Stats {
	return Stats{Engine: name, ElapsedSec: elapsed, Events: events} // want `Stats constructed without populating BytesScanned`
}

// searchMissingMost forgets everything but the engine name.
func searchMissingMost(name string) *Stats {
	return &Stats{Engine: name} // want `Stats constructed without populating BytesScanned, ElapsedSec, Events`
}

// streamStyle is the literal-then-mutate pattern: allowed, because
// every required field is assigned before the function returns.
func streamStyle(name string, chunks [][]byte) *Stats {
	stats := &Stats{Engine: name}
	for _, c := range chunks {
		stats.Events++
		stats.BytesScanned += len(c)
	}
	stats.ElapsedSec = 0.1
	return stats
}

// positional literals set every field by construction.
func positional(name string) Stats {
	return Stats{name, 0.5, 1, 2}
}
