// Package boundshint exercises the boundshint analyzer: slice access
// shapes that defeat bounds-check elimination inside hotpath loops are
// flagged; BCE-friendly idioms (len bounds, guards, re-slices, masks)
// and unannotated functions are not.
package boundshint

type engine struct {
	packed []uint64
	site   int
}

// kernel demonstrates the flagged loop-bound shapes.
//
//crisprlint:hotpath
func kernel(s []int, t []int, n int, k int) int {
	acc := 0
	for i := 0; i < n; i++ {
		acc += s[i] // want `s\[i\] is bounds-checked every iteration: loop bound n is not len\(s\)`
	}
	for i := 0; i < len(s); i++ {
		acc += s[i] // len bound: BCE elides, no finding
	}
	m := len(s)
	for i := 0; i < m; i++ {
		acc += s[i] // bound defined as len(s): no finding
	}
	for i := 0; i < len(s)-1; i++ {
		acc += s[i] // len minus a constant still proves the range
	}
	for i := 0; i < len(s); i++ {
		acc += t[i] // want `t\[i\] is bounds-checked every iteration: loop bound len\(s\) is not len\(t\)`
	}
	for i := range s {
		acc += s[i] // ranging over s proves s[i]
	}
	for i := range s {
		acc += t[i] // want `t\[i\] is bounds-checked every iteration: loop bound len\(s\) is not len\(t\)`
	}
	var rows [8]uint64
	for j := 0; j <= k; j++ {
		rows[j] = uint64(j) // want `rows\[j\] under inclusive bound .j <= k. keeps a bounds check`
	}
	for j := 0; j < 8; j++ {
		rows[j] = 0 // constant bound over a fixed-size array is provable
	}
	return acc + int(rows[0])
}

// guarded shows the guard idioms that teach the prove pass the bound.
//
//crisprlint:hotpath
func guarded(s []int, t []int, n int) int {
	acc := 0
	_ = s[n-1] // the guard itself is never flagged
	for i := 0; i < n; i++ {
		acc += s[i] // guarded above: no finding
	}
	t = t[:n]
	for i := 0; i < n; i++ {
		acc += t[i] // self-re-slice guard: no finding
	}
	return acc
}

// backwards demonstrates recurrence indexing.
//
//crisprlint:hotpath
func backwards(s []int) int {
	acc := 0
	for i := 0; i < len(s); i++ {
		acc += s[i-1] // want `backwards index s\[i - 1\] cannot be proven in range`
	}
	for i := 1; i < len(s); i++ {
		acc += s[i-1] // start value covers the offset: provable, no finding
	}
	if len(s) > 0 {
		acc += s[len(s)-1] // len-minus-constant outside a recurrence is provable
	}
	return acc
}

// masked demonstrates modulus masking.
//
//crisprlint:hotpath
func masked(s []int, x int, m int) int {
	acc := 0
	for i := 0; i < len(s); i++ {
		acc += s[x%m] // want `masked index s\[x % m\] uses a modulus other than len\(s\)`
		acc += s[x%len(s)] // modulus by len(s): BCE-recognized
		acc += s[x&7]      // power-of-two mask: BCE-friendly, not flagged
		x++
	}
	return acc
}

// reslice demonstrates per-iteration window re-slicing.
//
//crisprlint:hotpath
func reslice(seq []byte, k int) int {
	acc := 0
	for p := 0; p < len(seq)-k; p++ {
		window := seq[p : p+k] // want `non-constant re-slice seq\[p:p \+ k\] carries a slice-bounds check`
		acc += int(window[0])
		acc += len(seq[0:4]) // constant bounds: no finding
	}
	return acc
}

// allowed shows suppression.
//
//crisprlint:hotpath
func allowed(s []int, n int) int {
	acc := 0
	for i := 0; i < n; i++ {
		//crisprlint:allow boundshint caller guarantees n <= len(s)
		acc += s[i]
	}
	return acc
}

// cold is unannotated: identical shapes produce no findings.
func cold(s []int, n int) int {
	acc := 0
	for i := 0; i < n; i++ {
		acc += s[i]
	}
	return acc
}

// maps are never bounds-checked.
//
//crisprlint:hotpath
func viaMap(m map[int]int, n int) int {
	acc := 0
	for i := 0; i < n; i++ {
		acc += m[i-1]
	}
	return acc
}

var _ = engine{}
