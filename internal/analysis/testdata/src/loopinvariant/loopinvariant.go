// Package loopinvariant exercises the loopinvariant analyzer:
// loop-invariant field loads, map lookups, and zero-argument method
// calls on invariant receivers inside hotpath loops are flagged when
// the must-analysis proves they run on every iteration; conditional
// code, variant receivers, address-taken locals and unannotated
// functions stay silent.
package loopinvariant

type spec struct {
	pam    []byte
	offset int
	table  map[string]int
}

func (s spec) PAMOffset() int { return s.offset }

func (s *spec) Reset() { s.offset = 0 }

type engine struct {
	spec spec
	k    int
}

func use(*spec) {}

// kernel is the annotated hot function the candidates land in.
//
//crisprlint:hotpath
func kernel(e *engine, seq []byte, name string) int {
	acc := 0
	for i := 0; i < len(seq); i++ {
		acc += e.k // want `loop-invariant field load e\.k is reloaded every iteration`
		acc += e.k // deduplicated: one report per expression per loop
		acc += int(seq[i])
	}
	for i := range seq {
		if seq[i] == 'A' {
			acc += e.spec.offset // conditional: must-analysis keeps it silent
		}
	}
	for i := 0; i < len(seq); i++ {
		if seq[i] == 0 {
			break
		}
		acc += e.spec.offset // an early break upstream makes this conditional too
	}
	for i := 0; i < len(seq); i++ {
		acc += e.spec.table[name] // want `loop-invariant map lookup e\.spec\.table\[name\] repeats a hash every iteration`
		acc += int(seq[i])
	}
	for i := 0; i < len(seq); i++ {
		acc += e.spec.PAMOffset() // want `method call e\.spec\.PAMOffset\(\) on an invariant receiver repeats every iteration`
		acc += int(seq[i])
	}
	for i := 0; i < len(seq); i++ {
		e.spec.Reset() // pointer receiver: e is variant in this loop
		acc += e.k     // so this reload is not flagged
		acc += int(seq[i])
	}
	return acc
}

// variants shows the invariance escapes: reassignment and address
// taking both silence the candidate.
//
//crisprlint:hotpath
func variants(seq []byte) int {
	acc := 0
	s := spec{}
	for range seq {
		acc += s.offset // s is reassigned below: variant
		s = spec{}
	}
	p := spec{}
	use(&p)
	for range seq {
		acc += p.offset // address taken above: never invariant
	}
	return acc
}

// ranged shows range-loop bodies are analyzed the same way.
//
//crisprlint:hotpath
func ranged(e *engine, seq []byte) int {
	acc := 0
	for _, b := range seq {
		acc += e.k + int(b) // want `loop-invariant field load e\.k is reloaded every iteration`
	}
	return acc
}

// allowed shows suppression.
//
//crisprlint:hotpath
func allowed(e *engine, seq []byte) int {
	acc := 0
	for _, b := range seq {
		//crisprlint:allow loopinvariant measured: the compiler keeps it in a register here
		acc += e.k + int(b)
	}
	return acc
}

// cold is unannotated: identical shapes produce no findings.
func cold(e *engine, seq []byte) int {
	acc := 0
	for _, b := range seq {
		acc += e.k + int(b)
	}
	return acc
}
