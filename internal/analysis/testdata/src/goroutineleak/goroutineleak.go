// Package goroutineleak exercises the goroutineleak analyzer: every
// `go` statement must spawn a goroutine whose CFG exit is reachable —
// a select case that returns, a closeable range, a bounded loop, or a
// labeled break all count; `for {}`, `select{}`, and loops whose every
// select case loops again do not. Named callees are checked through
// the call graph, transitively.
package goroutineleak

// work's goroutine has a stop-channel case: terminates.
func work(ch chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// drain ranges over a closeable channel: terminates when the producer
// closes it.
func drain(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// bounded loops have a condition edge out.
func bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			_ = i
		}
	}()
}

// labeled break leaves the outer loop: terminates.
func labeled(ch chan int) {
	go func() {
	outer:
		for {
			select {
			case v := <-ch:
				if v == 0 {
					break outer
				}
			}
		}
	}()
}

func spinLit() {
	go func() { // want `goroutine never terminates`
		for {
		}
	}()
}

func blockForever() {
	go func() { // want `goroutine never terminates`
		select {}
	}()
}

// caseLoops: the select has a case, but every case loops again and
// nothing breaks out.
func caseLoops(ch chan int) {
	go func() { // want `goroutine never terminates`
		for {
			select {
			case <-ch:
			}
		}
	}()
}

// spin never returns; viaName spawns it by name.
func spin() {
	for {
	}
}

func viaName() {
	go spin() // want `goroutine runs internal/glfix\.spin, which never returns`
}

// spinTwice inherits NoReturn from its callee: the fact is transitive.
func spinTwice() {
	spin()
}

func viaTransitive() {
	go spinTwice() // want `goroutine runs internal/glfix\.spinTwice, which never returns`
}

// returner terminates, so spawning it by name is fine.
func returner(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func viaNameClean(ch chan int) {
	go returner(ch)
}
