// Fixture: the module-root package must use the "crisprscan: " prefix.
package crisprscan

import "fmt"

func wrongPrefix() error {
	return fmt.Errorf("core: this is the public surface") // want `lacks the "crisprscan: " prefix`
}

func rightPrefix() error {
	return fmt.Errorf("crisprscan: no guides")
}
