// Fixture: error-convention violations in a library package.
package demo

import (
	"errors"
	"fmt"
)

func wrongPrefix() error {
	return fmt.Errorf("core: borrowed another package's prefix") // want `lacks the "demo: " prefix`
}

func noPrefix() error {
	return errors.New("something broke") // want `lacks the "demo: " prefix`
}

func flattened(err error) error {
	return fmt.Errorf("demo: scan failed: %v", err) // want `error value err flattened into the message`
}

func flattenedNamed(scanErr error) error {
	return fmt.Errorf("demo: scan failed: %s", scanErr) // want `error value scanErr flattened into the message`
}

// Conforming forms.
func wrapped(err error) error {
	return fmt.Errorf("demo: scan failed: %w", err)
}

func dynamicPrefix(path string, err error) error {
	return fmt.Errorf("%s: %w", path, err)
}

func sentinel() error {
	return errors.New("demo: no patterns")
}

// errorsPkgName is a non-error identifier that happens to contain
// "error": must not be mistaken for a flattened cause.
func formatted(errorCount int) error {
	return fmt.Errorf("demo: %d errors", errorCount)
}
