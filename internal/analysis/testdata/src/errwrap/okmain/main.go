// Fixture: package main prints user-facing CLI errors; the library
// prefix convention does not apply.
package main

import "fmt"

func usage() error {
	return fmt.Errorf("no guides given (use -guides or -guide)")
}

func main() {}
