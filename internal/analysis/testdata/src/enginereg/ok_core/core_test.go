// Fixture: the parity matrix ranges over AllEngines, as required.
package core

import "testing"

func TestParityMatrix(t *testing.T) {
	for _, kind := range AllEngines {
		_ = kind
	}
}
