// Fixture: a conforming engine registry.
package core

type EngineKind string

const (
	EngineAlpha EngineKind = "alpha"
	EngineBeta  EngineKind = "beta"
)

var AllEngines = []EngineKind{EngineAlpha, EngineBeta}

func NewEngine(kind EngineKind) (any, error) {
	switch kind {
	case EngineAlpha:
		return nil, nil
	case EngineBeta:
		return nil, nil
	}
	return nil, nil
}
