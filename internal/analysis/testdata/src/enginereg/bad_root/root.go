// Fixture: the public package forgets to re-export one engine kind.
package crisprscan // want `does not re-export engine kind\(s\) EngineBeta`

import "github.com/cap-repro/crisprscan/internal/core"

const (
	EngineAlpha = core.EngineAlpha
)
