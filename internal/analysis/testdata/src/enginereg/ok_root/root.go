// Fixture: the public package re-exports every engine kind.
package crisprscan

import "github.com/cap-repro/crisprscan/internal/core"

const (
	EngineAlpha = core.EngineAlpha
	EngineBeta  = core.EngineBeta
)
