// Fixture: an engine registry with three parity violations.
package core

type EngineKind string

const (
	EngineAlpha EngineKind = "alpha"
	EngineBeta  EngineKind = "beta"
	EngineGamma EngineKind = "gamma" // want `EngineKind constant EngineGamma is missing from AllEngines`
	EngineDelta EngineKind = "delta" // want `EngineKind constant EngineDelta is not dispatched by NewEngine`
)

var AllEngines = []EngineKind{ // want `no Test function ranges over AllEngines`
	EngineAlpha,
	EngineBeta,
	EngineDelta,
	EngineGhost, // want `AllEngines entry EngineGhost is not a declared EngineKind constant`
}

func NewEngine(kind EngineKind) (any, error) {
	switch kind {
	case EngineAlpha, EngineBeta:
		return nil, nil
	case EngineGamma:
		return nil, nil
	}
	return nil, nil
}
