// Fixture: a test suite that hardcodes engines instead of ranging over
// AllEngines, so the parity-matrix check fires on the registry.
package core

import "testing"

func TestHardcodedEngines(t *testing.T) {
	for _, kind := range []EngineKind{EngineAlpha, EngineBeta} {
		_ = kind
	}
}
