// Fixture: a package outside the gated scan pipeline — ctxflow must
// stay silent even where its rules would otherwise fire.
package report

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

// Summarize ignores its ctx and manufactures a fresh one; legal here.
func Summarize(ctx context.Context, n int) error {
	return helper(context.Background())
}
