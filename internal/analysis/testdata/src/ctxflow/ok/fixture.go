// Fixture: healthy context plumbing — nothing here should fire.
package hscan

import "context"

func scanRange(ctx context.Context, lo, hi int) error { return ctx.Err() }

// ScanChromContext propagates its ctx downward.
func ScanChromContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := scanRange(ctx, i, i+1); err != nil {
			return err
		}
	}
	return nil
}

// ScanChrom is the sanctioned ctx-less compatibility bridge: it takes
// no context, so manufacturing the background one is legal here.
func ScanChrom(n int) error {
	return ScanChromContext(context.Background(), n)
}

// Abort only checks Done, which is propagation enough.
func Abort(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}
