// Fixture: severed context plumbing inside a gated scan package.
package core

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

// SearchAll ignores the ctx it was handed entirely.
func SearchAll(ctx context.Context, n int) error { // want `exported function SearchAll never uses its context.Context parameter "ctx"`
	return helper(context.Background()) // want `SearchAll manufactures a fresh context despite receiving one`
}

// ScanSpan substitutes TODO for the caller's ctx (and "uses" ctx only
// for the error check, which rule 1 accepts — rule 2 still fires).
func ScanSpan(ctx context.Context, lo, hi int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return helper(context.TODO()) // want `ScanSpan manufactures a fresh context despite receiving one`
}

// Drain discards the parameter outright.
func Drain(_ context.Context, n int) int { return n } // want `exported function Drain discards its context.Context parameter`

// nested literals inherit the in-scope ctx.
func ScanNested(ctx context.Context) error {
	_ = ctx
	f := func() error {
		return helper(context.Background()) // want `ScanNested manufactures a fresh context despite receiving one`
	}
	return f()
}
