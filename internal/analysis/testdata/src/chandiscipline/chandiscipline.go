// Package chandiscipline exercises the chandiscipline analyzer: no
// send or close after a close on any path, close only by the owning
// sender (signal channels exempt), and no send on a locally-made
// unbuffered channel while a mutex is held.
package chandiscipline

import "sync"

func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want `send on ch may follow close\(ch\)`
}

func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want `ch may already be closed here`
}

// maybeClosed: the close happens on one branch only, but a may-analysis
// still catches the send below the join.
func maybeClosed(c bool) {
	ch := make(chan int, 1)
	if c {
		close(ch)
	}
	ch <- 1 // want `send on ch may follow close\(ch\)`
}

// remade: reassigning the variable kills the closed fact.
func remade() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}

// closeByReceiver consumes the channel and then closes it: close
// belongs to the sender.
func closeByReceiver(ch chan int) {
	for v := range ch {
		_ = v
	}
	close(ch) // want `closed here but this function never sends on it`
}

// closeSignal: closing a struct{} channel IS the send — exempt.
func closeSignal(done chan struct{}) {
	close(done)
}

// produce owns the channel it made: sending and closing it is the
// correct ownership pattern.
func produce(xs []int) chan int {
	ch := make(chan int, len(xs))
	for _, x := range xs {
		ch <- x
	}
	close(ch)
	return ch
}

type box struct {
	mu sync.Mutex
}

// lockedSend blocks on an unbuffered send while holding b.mu; a
// receiver that needs b.mu deadlocks.
func lockedSend(b *box) {
	ch := make(chan int)
	go func() { <-ch }()
	b.mu.Lock()
	ch <- 1 // want `send on unbuffered channel ch while holding b\.mu`
	b.mu.Unlock()
}

// unlockedSend releases the mutex first.
func unlockedSend(b *box) {
	ch := make(chan int)
	go func() { <-ch }()
	b.mu.Lock()
	b.mu.Unlock()
	ch <- 1
}

// bufferedSend cannot block (capacity 1, one send).
func bufferedSend(b *box) {
	ch := make(chan int, 1)
	b.mu.Lock()
	ch <- 1
	b.mu.Unlock()
	<-ch
}
