// Package allow exercises the //crisprlint:allow suppression
// directive: trailing and line-above placement, multi-analyzer lists,
// and the invalid bare form (no analyzer name) which suppresses
// nothing.
package allow

//crisprlint:hotpath
func trailing(n int) []int {
	s := make([]int, n) //crisprlint:allow hotpath scratch sized once per call
	return s
}

//crisprlint:hotpath
func lineAbove(n int) []int {
	//crisprlint:allow hotpath scratch sized once per call
	s := make([]int, n)
	return s
}

//crisprlint:hotpath
func multiList(n int) []int {
	//crisprlint:allow atomicfield,hotpath one directive may cover several analyzers
	s := make([]int, n)
	return s
}

//crisprlint:hotpath
func wrongAnalyzer(n int) []int {
	//crisprlint:allow lockorder naming a different analyzer does not cover hotpath
	s := make([]int, n) // want `make allocates on every invocation`
	return s
}

//crisprlint:hotpath
func bareDirective(n int) []int {
	//crisprlint:allow
	s := make([]int, n) // want `make allocates on every invocation`
	return s
}
