// Package lockorder exercises the lockorder analyzer: fields documented
// `// guarded by <mu>` must be accessed with that mutex held on all
// control-flow paths; deferred unlocks keep the mutex held, *Locked
// functions and closures are exempt.
package lockorder

import "sync"

type reg struct {
	mu sync.RWMutex
	// guarded by mu
	sites int
	total int // guarded by mu
	name  string
}

// clean holds the lock across the access.
func clean(r *reg) {
	r.mu.Lock()
	r.sites++
	r.mu.Unlock()
}

// deferred releases via defer: the mutex stays held for the analysis.
func deferred(r *reg) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sites + r.total
}

// readLock counts too.
func readLock(r *reg) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sites
}

// torn never takes the lock.
func torn(r *reg) int {
	return r.sites // want `field sites is documented .guarded by mu. but accessed without r\.mu held on all paths in torn`
}

// oneBranch only locks on one path, so the access is not protected on
// all paths.
func oneBranch(r *reg, c bool) {
	if c {
		r.mu.Lock()
	}
	r.total++ // want `field total is documented .guarded by mu. but accessed without r\.mu held on all paths in oneBranch`
	if c {
		r.mu.Unlock()
	}
}

// releasedEarly unlocks before the access.
func releasedEarly(r *reg) int {
	r.mu.Lock()
	r.mu.Unlock()
	return r.sites // want `field sites is documented .guarded by mu. but accessed without r\.mu held on all paths in releasedEarly`
}

// crossed holds the wrong receiver's mutex: a.mu does not guard
// b.sites.
func crossed(a, b *reg) {
	a.mu.Lock()
	b.sites++ // want `field sites is documented .guarded by mu. but accessed without b\.mu held on all paths in crossed`
	a.mu.Unlock()
}

// perIteration locks and unlocks inside the loop body: held at the
// access on every path through it.
func perIteration(r *reg, n int) {
	for i := 0; i < n; i++ {
		r.mu.Lock()
		r.sites++
		r.mu.Unlock()
	}
}

// snapshotLocked follows the caller-holds-the-lock naming convention
// and is exempt.
func snapshotLocked(r *reg) int {
	return r.sites
}

// closure bodies have their call sites' locking context, which a
// per-function analysis cannot see: exempt.
func closure(r *reg) func() int {
	return func() int { return r.sites }
}

// unguarded fields are never constrained.
func unguarded(r *reg) string {
	return r.name
}
