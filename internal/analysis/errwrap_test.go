package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestErrWrapFiresOnConventionViolations(t *testing.T) {
	analysistest.Run(t, analysis.ErrWrap,
		analysistest.Pkg{Dir: "errwrap/bad", Path: analysistest.ModulePath + "/internal/demo"})
}

func TestErrWrapEnforcesRootPackagePrefix(t *testing.T) {
	analysistest.Run(t, analysis.ErrWrap,
		analysistest.Pkg{Dir: "errwrap/badroot", Path: analysistest.ModulePath})
}

func TestErrWrapExemptsMainPackages(t *testing.T) {
	analysistest.Run(t, analysis.ErrWrap,
		analysistest.Pkg{Dir: "errwrap/okmain", Path: analysistest.ModulePath + "/cmd/demo"})
}
