package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestHotPathFlagsAnnotatedKernels(t *testing.T) {
	analysistest.Run(t, analysis.HotPath,
		analysistest.Pkg{Dir: "hotpath", Path: analysistest.ModulePath + "/internal/hscan"})
}
