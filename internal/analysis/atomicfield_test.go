package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestAtomicFieldCatchesTornAccess(t *testing.T) {
	analysistest.Run(t, analysis.AtomicField,
		analysistest.Pkg{Dir: "atomicfield", Path: analysistest.ModulePath + "/internal/metrics"})
}
