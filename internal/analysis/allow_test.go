package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

// TestAllowDirective exercises //crisprlint:allow suppression through
// the hotpath analyzer: trailing and line-above placement, analyzer
// lists, non-matching analyzer names, and the invalid bare form. The
// fixture's unsuppressed lines carry want markers; everything else must
// stay silent, which is exactly what the harness asserts.
func TestAllowDirective(t *testing.T) {
	analysistest.Run(t, analysis.HotPath,
		analysistest.Pkg{Dir: "allow", Path: analysistest.ModulePath + "/internal/hscan"})
}
