package analysis

// A deliberately small per-function control-flow helper for the typed
// analyzers. Two abstractions are exported to the rest of the package:
//
//   - loopRanges: the source spans of loop bodies inside a function,
//     used by hotpath to classify an allocation as per-iteration versus
//     per-invocation;
//   - funcCFG: basic blocks over ast.Stmt with approximate successor
//     edges, used by lockorder's forward must-analysis ("is this mutex
//     held on all paths reaching this access?").
//
// The CFG is approximate in ways that are safe for a must-analysis
// whose findings can be suppressed: goto edges jump straight to the
// exit block, and function literals are opaque statements (their
// bodies are analyzed separately, or not at all, by each analyzer's
// choice). Labeled break/continue resolve to their named loop or
// switch (the interprocedural tier's termination check depends on
// `break outer` actually leaving the outer loop); an unknown label
// degrades to the exit block. A `select` without a default clause
// blocks until a case fires, so — unlike a switch — it contributes no
// fall-through edge, and the empty `select{}` is modeled as diverging.
// Unreachable blocks start from the full universe, so dead code never
// produces findings.

import (
	"go/ast"
	"go/token"
)

// loopRanges returns the [lbrace, rbrace] source spans of every loop
// body (for and range statements) under root, including nested loops.
// Function literals are not descended into: a closure's body belongs to
// the closure's own classification.
func loopRanges(root ast.Node) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			if n != root {
				return false
			}
		case *ast.ForStmt:
			out = append(out, [2]token.Pos{s.Body.Lbrace, s.Body.Rbrace})
		case *ast.RangeStmt:
			out = append(out, [2]token.Pos{s.Body.Lbrace, s.Body.Rbrace})
		}
		return true
	})
	return out
}

// inAnyRange reports whether pos falls inside one of the spans.
func inAnyRange(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if pos > r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

// cfgBlock is one basic block: a sequence of leaf nodes (simple
// statements and branch-condition expressions — never compound
// statements, so walking a node never crosses a block boundary) plus
// successor edges.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// buildCFG constructs the graph for a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{cfg: &funcCFG{}}
	b.cfg.entry = b.newBlock()
	b.cfg.exit = b.newBlock()
	last := b.stmtList(b.cfg.entry, body.List)
	b.edge(last, b.cfg.exit)
	return b.cfg
}

type cfgBuilder struct {
	cfg *funcCFG
	// breakTargets / continueTargets are the innermost-first stacks the
	// corresponding branch statements resolve against.
	breakTargets    []*cfgBlock
	continueTargets []*cfgBlock
	// pendingLabels holds the labels of the LabeledStmts currently
	// being lowered, consumed by the loop or switch they name (several
	// labels may stack on one statement). Any statement that is not a
	// labeled loop/switch drops them: they remain goto targets only.
	pendingLabels []string
	// labelBreak / labelCont resolve labeled branch statements to the
	// exit and header blocks of the construct carrying the label.
	labelBreak map[string]*cfgBlock
	labelCont  map[string]*cfgBlock
}

// takeLabels consumes the pending labels for the construct being built.
func (b *cfgBuilder) takeLabels() []string {
	l := b.pendingLabels
	b.pendingLabels = nil
	return l
}

// registerLabels maps each label to its break target and, for loops,
// its continue target.
func (b *cfgBuilder) registerLabels(labels []string, brk, cont *cfgBlock) {
	if len(labels) == 0 {
		return
	}
	if b.labelBreak == nil {
		b.labelBreak = make(map[string]*cfgBlock)
		b.labelCont = make(map[string]*cfgBlock)
	}
	for _, label := range labels {
		b.labelBreak[label] = brk
		if cont != nil {
			b.labelCont[label] = cont
		}
	}
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// stmtList threads the statements through cur and returns the block
// control falls out of (nil when the list always diverts, e.g. ends in
// return).
func (b *cfgBuilder) stmtList(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	if cur == nil {
		// Unreachable code after a terminating statement: give it its
		// own predecessor-less block so the dataflow treats it as top.
		cur = b.newBlock()
	}
	// Labels bind only to the statement they prefix; anything that is
	// not a loop or switch drops them (they stay goto targets only).
	labels := b.takeLabels()
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmtList(thenB, s.Body.List)
		join := b.newBlock()
		b.edge(thenEnd, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd := b.stmt(elseB, s.Else)
			b.edge(elseEnd, join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		header := b.newBlock()
		b.edge(cur, header)
		if s.Cond != nil {
			header.nodes = append(header.nodes, s.Cond)
		}
		exit := b.newBlock()
		bodyB := b.newBlock()
		b.edge(header, bodyB)
		if s.Cond != nil {
			b.edge(header, exit)
		}
		b.registerLabels(labels, exit, header)
		b.breakTargets = append(b.breakTargets, exit)
		b.continueTargets = append(b.continueTargets, header)
		bodyEnd := b.stmtList(bodyB, s.Body.List)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		if s.Post != nil {
			bodyEnd = b.stmt(bodyEnd, s.Post)
		}
		b.edge(bodyEnd, header)
		return exit

	case *ast.RangeStmt:
		header := b.newBlock()
		b.edge(cur, header)
		header.nodes = append(header.nodes, s.X)
		exit := b.newBlock()
		b.edge(header, exit) // empty collection
		bodyB := b.newBlock()
		b.edge(header, bodyB)
		b.registerLabels(labels, exit, header)
		b.breakTargets = append(b.breakTargets, exit)
		b.continueTargets = append(b.continueTargets, header)
		bodyEnd := b.stmtList(bodyB, s.Body.List)
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
		b.edge(bodyEnd, header)
		return exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(cur, s, labels)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.edge(cur, b.cfg.exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t, ok := b.labelBreak[s.Label.Name]; ok {
					b.edge(cur, t)
				} else {
					b.edge(cur, b.cfg.exit)
				}
			} else if n := len(b.breakTargets); n > 0 {
				b.edge(cur, b.breakTargets[n-1])
			} else {
				b.edge(cur, b.cfg.exit)
			}
			return nil
		case token.CONTINUE:
			if s.Label != nil {
				if t, ok := b.labelCont[s.Label.Name]; ok {
					b.edge(cur, t)
				} else {
					b.edge(cur, b.cfg.exit)
				}
			} else if n := len(b.continueTargets); n > 0 {
				b.edge(cur, b.continueTargets[n-1])
			} else {
				b.edge(cur, b.cfg.exit)
			}
			return nil
		case token.GOTO:
			b.edge(cur, b.cfg.exit)
			return nil
		}
		// fallthrough is handled by switchLike.
		return cur

	case *ast.LabeledStmt:
		b.pendingLabels = append(labels, s.Label.Name)
		out := b.stmt(cur, s.Stmt)
		b.pendingLabels = nil
		return out

	default:
		// Assignments, expression statements, declarations, defer, go,
		// send, incdec, empty: leaf nodes with straight-line flow.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchLike lowers switch, type-switch and select: every clause
// branches from the header and joins after; an explicit fallthrough
// adds clause→next-clause. A switch missing a default adds a
// header→join edge (no case may match); a select missing a default
// does NOT — it blocks until a case fires, so control reaches the join
// only through a clause body, and the empty `select{}` diverges.
func (b *cfgBuilder) switchLike(cur *cfgBlock, s ast.Stmt, labels []string) *cfgBlock {
	var clauses []ast.Stmt
	hasDefault := false
	isSelect := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		isSelect = true
	}
	join := b.newBlock()
	b.registerLabels(labels, join, nil)
	b.breakTargets = append(b.breakTargets, join)
	bodies := make([]*cfgBlock, len(clauses))
	ends := make([]*cfgBlock, len(clauses))
	for i, cl := range clauses {
		bodyB := b.newBlock()
		b.edge(cur, bodyB)
		bodies[i] = bodyB
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				bodyB.nodes = append(bodyB.nodes, e)
			}
			list = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				list = append([]ast.Stmt{cl.Comm}, cl.Body...)
			}
			if list == nil {
				list = cl.Body
			}
		}
		end := b.stmtList(bodyB, trimFallthrough(list))
		if hasFallthrough(list) && i+1 < len(clauses) {
			// The edge to the next clause body is wired after all bodies
			// exist; remember via ends and patch below.
			ends[i] = end
			continue
		}
		b.edge(end, join)
		ends[i] = nil
	}
	for i, end := range ends {
		if end != nil && i+1 < len(clauses) {
			b.edge(end, bodies[i+1])
		}
	}
	if !hasDefault && !isSelect {
		b.edge(cur, join)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	return join
}

func hasFallthrough(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	br, ok := list[len(list)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func trimFallthrough(list []ast.Stmt) []ast.Stmt {
	if hasFallthrough(list) {
		return list[:len(list)-1]
	}
	return list
}

// mustHeld runs a forward must-analysis over the CFG: fact f is in the
// result set at a node when every path from the entry to that node has
// generated f without a subsequent kill. gen and kill are evaluated on
// leaf nodes only (the builder guarantees compound statements never
// appear as nodes). universe is the set of all facts; blocks not yet
// reached start at the full universe so unreachable code yields no
// findings.
//
// The returned visit function replays the converged analysis: it walks
// every block's nodes in order, calling check(node, held) with the held
// set in effect immediately before the node's own gen/kill apply.
// exitIn is the converged must-set at the function's exit block — the
// facts guaranteed to hold when control falls off the end of the body
// or leaves through any return (an unreachable exit reports the full
// universe, so diverging functions yield no exit findings).
func (c *funcCFG) mustHeld(universe map[string]bool, genKill func(n ast.Node, held map[string]bool)) (visit func(check func(n ast.Node, held map[string]bool)), exitIn map[string]bool) {
	in := make(map[*cfgBlock]map[string]bool, len(c.blocks))
	full := func() map[string]bool {
		m := make(map[string]bool, len(universe))
		for k := range universe {
			m[k] = true
		}
		return m
	}
	for _, blk := range c.blocks {
		in[blk] = full()
	}
	in[c.entry] = map[string]bool{}

	preds := make(map[*cfgBlock][]*cfgBlock, len(c.blocks))
	for _, blk := range c.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	transfer := func(blk *cfgBlock) map[string]bool {
		held := make(map[string]bool, len(in[blk]))
		for k := range in[blk] {
			held[k] = true
		}
		for _, n := range blk.nodes {
			genKill(n, held)
		}
		return held
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range c.blocks {
			if blk == c.entry {
				continue
			}
			var merged map[string]bool
			ps := preds[blk]
			if len(ps) == 0 {
				continue // unreachable: stays at the full universe
			}
			merged = transfer(ps[0])
			for _, p := range ps[1:] {
				out := transfer(p)
				for k := range merged {
					if !out[k] {
						delete(merged, k)
					}
				}
			}
			if !sameSet(in[blk], merged) {
				in[blk] = merged
				changed = true
			}
		}
	}
	return func(check func(n ast.Node, held map[string]bool)) {
		for _, blk := range c.blocks {
			held := make(map[string]bool, len(in[blk]))
			for k := range in[blk] {
				held[k] = true
			}
			for _, n := range blk.nodes {
				check(n, held)
				genKill(n, held)
			}
		}
	}, in[c.exit]
}

// mayHold is the dual of mustHeld: a forward may-analysis where fact f
// is in the result set at a node when SOME path from the entry has
// generated f without a subsequent kill — joins union instead of
// intersecting, and blocks start empty (unreachable code stays empty,
// so dead code never produces findings). chandiscipline uses it for
// "this channel may already be closed here".
//
// exitIn is the converged may-set at the function's exit block: the
// facts that reach the end of the body, or any return, on at least one
// path without being killed. spanend uses it for "this span's end
// function may leak out of the function without being called".
func (c *funcCFG) mayHold(genKill func(n ast.Node, facts map[string]bool)) (visit func(check func(n ast.Node, facts map[string]bool)), exitIn map[string]bool) {
	in := make(map[*cfgBlock]map[string]bool, len(c.blocks))
	for _, blk := range c.blocks {
		in[blk] = map[string]bool{}
	}
	preds := make(map[*cfgBlock][]*cfgBlock, len(c.blocks))
	for _, blk := range c.blocks {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	transfer := func(blk *cfgBlock) map[string]bool {
		facts := make(map[string]bool, len(in[blk]))
		for k := range in[blk] {
			facts[k] = true
		}
		for _, n := range blk.nodes {
			genKill(n, facts)
		}
		return facts
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range c.blocks {
			if blk == c.entry {
				continue
			}
			merged := map[string]bool{}
			for _, p := range preds[blk] {
				for k := range transfer(p) {
					merged[k] = true
				}
			}
			if !sameSet(in[blk], merged) {
				in[blk] = merged
				changed = true
			}
		}
	}
	return func(check func(n ast.Node, facts map[string]bool)) {
		for _, blk := range c.blocks {
			facts := make(map[string]bool, len(in[blk]))
			for k := range in[blk] {
				facts[k] = true
			}
			for _, n := range blk.nodes {
				check(n, facts)
				genKill(n, facts)
			}
		}
	}, in[c.exit]
}

// exitReachable reports whether the function's exit block is reachable
// from the entry, treating any block that diverges (per the predicate,
// e.g. "this node calls a function that never returns") as a dead end.
// It is the interprocedural tier's termination test: a goroutine body
// whose exit is unreachable has no path that ever lets it finish.
func (c *funcCFG) exitReachable(diverges func(n ast.Node) bool) bool {
	seen := make(map[*cfgBlock]bool, len(c.blocks))
	var walk func(blk *cfgBlock) bool
	walk = func(blk *cfgBlock) bool {
		if seen[blk] {
			return false
		}
		seen[blk] = true
		if blk == c.exit {
			return true
		}
		for _, n := range blk.nodes {
			if diverges != nil && diverges(n) {
				return false
			}
		}
		for _, s := range blk.succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(c.entry)
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
