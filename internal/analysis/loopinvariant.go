package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LoopInvariant flags loop-invariant computation inside the loops of
// //crisprlint:hotpath functions: work whose operands never change
// across iterations but which is re-evaluated every pass — repeated
// struct field loads (the compiler often cannot keep them in a
// register once any store or call intervenes), invariant map lookups
// (a hash per iteration), and zero-argument method calls on invariant
// receivers. Each finding suggests hoisting the value into a local
// before the loop; method-call findings apply only when the callee is
// pure, which the analyzer cannot prove — hence the hint framing.
//
// Two conservatisms bound the noise. First, invariance: an identifier
// counts as variant if the loop assigns it (directly, through a field
// or index store, via ++/--, or as a range variable), if its address
// is taken anywhere in the function, or if a pointer-receiver method
// is invoked on it inside the loop; expressions containing calls are
// never invariant. Second, must-execution: a candidate is reported
// only when the forward must-analysis over the loop body's CFG proves
// the expression is evaluated on every complete iteration — code
// under an if, a guarded continue, or an early break is conditional,
// and hoisting it would pessimize the common path, so it is never
// flagged. Findings are suppressed with //crisprlint:allow
// loopinvariant.
var LoopInvariant = &Analyzer{
	Name: "loopinvariant",
	Doc: "loop-invariant computation in //crisprlint:hotpath loops: repeated field " +
		"loads, invariant map lookups, and zero-argument method calls on invariant " +
		"receivers, restricted by must-analysis to unconditionally executed code",
	Run: runLoopInvariant,
}

func runLoopInvariant(pass *Pass) error {
	ti := pass.Types()
	reported := make(map[token.Pos]bool) // nested hot funcs share spans; report once
	for _, f := range pass.Pkg.Files {
		for _, hf := range HotFuncs(pass.Fset, f) {
			checkLoopInvariant(pass, ti, hf, reported)
		}
	}
	return nil
}

func checkLoopInvariant(pass *Pass, ti *TypeInfo, hf HotFunc, reported map[token.Pos]bool) {
	addrTaken := collectAddrTaken(hf.Body)
	ast.Inspect(hf.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			analyzeInvariantLoop(pass, ti, hf, n, n.Body, addrTaken, reported)
		case *ast.RangeStmt:
			analyzeInvariantLoop(pass, ti, hf, n, n.Body, addrTaken, reported)
		}
		return true
	})
}

// analyzeInvariantLoop reports the invariant candidates of one loop.
// Nested loops need no special casing: their bodies sit behind a
// header that may skip them (zero iterations), so the must-analysis
// already classifies their nodes as conditional for the outer loop,
// and the walk revisits them with their own (tighter) variant set.
func analyzeInvariantLoop(pass *Pass, ti *TypeInfo, hf HotFunc, loop ast.Node, body *ast.BlockStmt, addrTaken map[string]bool, reported map[token.Pos]bool) {
	variant := collectVariant(ti, loop)
	inv := &invariance{ti: ti, variant: variant, addrTaken: addrTaken}

	cfg := buildCFG(body)
	nodeKey := make(map[ast.Node]string)
	universe := make(map[string]bool)
	for bi, blk := range cfg.blocks {
		for ni, n := range blk.nodes {
			k := fmt.Sprintf("%d.%d", bi, ni)
			nodeKey[n] = k
			universe[k] = true
		}
	}
	_, exitIn := cfg.mustHeld(universe, func(n ast.Node, held map[string]bool) {
		held[nodeKey[n]] = true
	})

	seen := make(map[string]bool) // one report per expression per loop
	report := func(pos token.Pos, expr string, format string, args ...any) {
		if seen[expr] || reported[pos] {
			return
		}
		seen[expr] = true
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	for _, blk := range cfg.blocks {
		for _, n := range blk.nodes {
			if !exitIn[nodeKey[n]] {
				continue // conditional: not on every iteration
			}
			scanInvariantCandidates(ti, hf, n, inv, report)
		}
	}
}

// scanInvariantCandidates walks one must-executed leaf node. Stores
// are skipped (an assignment's left side is a write, not a reload) and
// closures are opaque — their bodies run under their own annotation.
func scanInvariantCandidates(ti *TypeInfo, hf HotFunc, n ast.Node, inv *invariance, report func(token.Pos, string, string, ...any)) {
	var exprs []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		exprs = n.Rhs
		// Index expressions on the left still read their index operand.
		for _, lhs := range n.Lhs {
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				exprs = append(exprs, ix.Index)
			}
		}
	case *ast.IncDecStmt:
		return
	case ast.Expr:
		exprs = []ast.Expr{n}
	case *ast.ExprStmt:
		exprs = []ast.Expr{n.X}
	case *ast.ReturnStmt:
		exprs = n.Results
	case *ast.SendStmt:
		exprs = []ast.Expr{n.Value}
	default:
		return
	}
	for _, e := range exprs {
		walkInvariant(ti, hf, e, inv, report)
	}
}

func walkInvariant(ti *TypeInfo, hf HotFunc, e ast.Expr, inv *invariance, report func(token.Pos, string, string, ...any)) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && len(n.Args) == 0 && isMethodSel(ti, sel) && inv.invariant(sel.X) {
				s := types.ExprString(n)
				report(n.Pos(), s, "hot path %s: method call %s on an invariant receiver repeats every iteration; "+
					"hoist its result into a local before the loop if the callee is pure, or justify with //crisprlint:allow loopinvariant",
					hf.Name, s)
				return false
			}
			return true
		case *ast.IndexExpr:
			if isMapIndex(ti, n) && inv.invariant(n.X) && inv.invariant(n.Index) {
				s := types.ExprString(n)
				report(n.Pos(), s, "hot path %s: loop-invariant map lookup %s repeats a hash every iteration; "+
					"hoist it out of the loop or justify with //crisprlint:allow loopinvariant",
					hf.Name, s)
				return false
			}
			return true
		case *ast.SelectorExpr:
			if isFieldSel(ti, n) && inv.invariant(n) {
				s := types.ExprString(n)
				report(n.Pos(), s, "hot path %s: loop-invariant field load %s is reloaded every iteration; "+
					"hoist it into a local before the loop or justify with //crisprlint:allow loopinvariant",
					hf.Name, s)
				return false
			}
			return true
		}
		return true
	})
}

// invariance decides whether an expression's value can change across
// iterations of the loop under analysis.
type invariance struct {
	ti        *TypeInfo
	variant   map[string]bool
	addrTaken map[string]bool
}

func (v *invariance) invariant(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return false
		}
		return !v.variant[e.Name] && !v.addrTaken[e.Name]
	case *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return v.invariant(e.X)
	case *ast.SelectorExpr:
		if isPkgQualifier(v.ti, e.X) {
			return true // package-qualified constant or var read
		}
		return v.invariant(e.X)
	case *ast.IndexExpr:
		return v.invariant(e.X) && v.invariant(e.Index)
	case *ast.UnaryExpr:
		if e.Op == token.AND || e.Op == token.ARROW {
			return false
		}
		return v.invariant(e.X)
	case *ast.BinaryExpr:
		return v.invariant(e.X) && v.invariant(e.Y)
	case *ast.StarExpr:
		// A pointer dereference can observe stores made through other
		// names; never treat it as invariant.
		return false
	case *ast.CallExpr:
		// len/cap of an invariant operand are the only calls trusted to
		// be invariant; everything else may have effects.
		if fn, ok := e.Fun.(*ast.Ident); ok && (fn.Name == "len" || fn.Name == "cap") && len(e.Args) == 1 {
			return v.invariant(e.Args[0])
		}
		return false
	}
	return false
}

// collectVariant gathers the identifiers the loop may change: direct
// assignment targets (including the roots of field/index/deref
// stores), ++/-- targets, range variables, the loop's own init/post
// variables, address-taken locals, and receivers of pointer-receiver
// method calls. Closure bodies inside the loop are included — a
// captured variable mutated by a per-iteration closure is variant.
func collectVariant(ti *TypeInfo, loop ast.Node) map[string]bool {
	variant := make(map[string]bool)
	mark := func(e ast.Expr) {
		if id := rootIdent(e); id != "" {
			variant[id] = true
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.RangeStmt:
			if n.Key != nil {
				mark(n.Key)
			}
			if n.Value != nil {
				mark(n.Value)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && mayMutateReceiver(ti, sel) {
				mark(sel.X)
			}
		}
		return true
	})
	return variant
}

// collectAddrTaken records identifiers whose address escapes anywhere
// in the hot function: stores through such names alias freely, so they
// are never invariant.
func collectAddrTaken(body *ast.BlockStmt) map[string]bool {
	taken := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if id := rootIdent(u.X); id != "" {
				taken[id] = true
			}
		}
		return true
	})
	return taken
}

func rootIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// isFieldSel reports whether sel is a struct field access (not a
// method value, package-qualified name, or unresolved selector).
func isFieldSel(ti *TypeInfo, sel *ast.SelectorExpr) bool {
	s, ok := ti.Info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// isMethodSel reports whether sel selects a method (value or interface
// dispatch). Without type information the call is not flagged.
func isMethodSel(ti *TypeInfo, sel *ast.SelectorExpr) bool {
	s, ok := ti.Info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

// mayMutateReceiver is conservative: a method whose receiver is a
// pointer (or whose signature is unknown) may write through it.
func mayMutateReceiver(ti *TypeInfo, sel *ast.SelectorExpr) bool {
	s, ok := ti.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	_, isPtr := sig.Recv().Type().(*types.Pointer)
	return isPtr
}

// isPkgQualifier reports whether e names an imported package.
func isPkgQualifier(ti *TypeInfo, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := ti.Info.Uses[id]
	if !ok {
		return false
	}
	_, isPkg := obj.(*types.PkgName)
	return isPkg
}
