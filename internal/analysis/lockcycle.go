package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// LockCycle is the interprocedural extension of lockorder: it folds
// every function's observed lock-order pairs (mutex B acquired while
// mutex A is held, directly or through a callee — see lockEdgesOf in
// callgraph.go) into one module-wide directed graph over canonical
// mutex identities, and flags every edge that closes a cycle. Two
// goroutines walking a cycle's edges in opposite orders deadlock, and
// no single-function analysis can see it: the two halves of the
// inversion typically live in different functions, often different
// packages.
//
// Only module-wide mutexes participate (struct fields and package-level
// vars of type sync.Mutex/RWMutex; locals cannot be contended across
// functions). Edges come from a must-held analysis, so a path that
// provably releases A before taking B contributes nothing. Under the
// vet protocol the edge set also folds in the serialized facts of
// imported packages; edges between sibling packages that do not import
// each other are only visible to the standalone whole-module run, which
// is why CI runs both modes.
//
// Each offending acquisition site is reported in the package that
// contains it (the analyzer runs per package but consults the shared
// module graph), so a cycle spanning k packages produces one diagnostic
// per inverting site, each suppressible where it occurs.
var LockCycle = &Analyzer{
	Name: "lockcycle",
	Doc: "no cycles in the module-wide lock-order graph: a mutex acquired while " +
		"holding another (directly or through calls) must never be ordered both " +
		"ways — opposite-order goroutines deadlock",
	Run: runLockCycle,
}

func runLockCycle(pass *Pass) error {
	if pass.Program == nil {
		return nil
	}
	cg := pass.Program.callGraphOf(pass.Fset)
	edges := cg.moduleLockEdges()
	if len(edges) == 0 {
		return nil
	}

	adj := make(map[string][]string)
	have := make(map[string]bool)
	for _, e := range edges {
		k := e.held + "\x00" + e.acquired
		if !have[k] {
			have[k] = true
			adj[e.held] = append(adj[e.held], e.acquired)
		}
	}
	for _, succs := range adj {
		sort.Strings(succs)
	}

	// Report only the acquisition sites that sit in this package's
	// files: the analyzer runs once per package, and every edge carries
	// the position of its acquiring (or calling) statement.
	own := make(map[string]bool, len(pass.Pkg.Files))
	for _, f := range pass.Pkg.Files {
		own[pass.Fset.Position(f.Pos()).Filename] = true
	}

	seen := make(map[string]bool)
	for _, e := range edges {
		if !e.pos.IsValid() || !own[pass.Fset.Position(e.pos).Filename] {
			continue
		}
		back := lockPath(adj, e.acquired, e.held)
		if back == nil {
			continue
		}
		key := fmt.Sprintf("%d\x00%s\x00%s", e.pos, e.held, e.acquired)
		if seen[key] {
			continue
		}
		seen[key] = true
		names := make([]string, len(back))
		for i, id := range back {
			names[i] = lockDisplayName(pass.Program, id)
		}
		via := ""
		if e.viaCall != "" {
			via = fmt.Sprintf(" (through the call to %s)", funcDisplayName(pass.Program, e.viaCall))
		}
		pass.Reportf(e.pos, "lock-order cycle: %s is acquired here while %s is held%s, but elsewhere the chain %s is established; "+
			"goroutines taking these locks in opposite orders deadlock — pick one global order",
			lockDisplayName(pass.Program, e.acquired), lockDisplayName(pass.Program, e.held), via,
			strings.Join(names, " → "))
	}
	return nil
}

// lockPath finds a path from src to dst in the lock-order graph (BFS,
// deterministic because successor lists are sorted), returning the node
// sequence src..dst, or nil when dst is unreachable.
func lockPath(adj map[string][]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if _, visited := prev[next]; visited {
				continue
			}
			prev[next] = cur
			if next == dst {
				var path []string
				for at := dst; at != ""; at = prev[at] {
					path = append(path, at)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}
