package analysis

// This file is the type-checked tier of the analysis framework. The
// original crisprlint analyzers are purely syntactic; the hot-path
// invariants added for the throughput work (allocation-free scan
// kernels, atomics discipline, lock ordering) need go/types: interface
// boxing is invisible in syntax, and field identity across selector
// expressions requires resolved objects.
//
// The tier keeps the zero-dependency constraint by using only the
// standard library:
//
//   - in the standalone multichecker, each package's already-parsed
//     files are type-checked against the Pass's own FileSet, with
//     imports resolved by go/importer's "source" importer (which
//     understands module-local import paths by delegating to go/build,
//     and typechecks the stdlib from source);
//   - in the `go vet -vettool` protocol, the go command hands us export
//     data for every dependency (ImportMap/PackageFile in the vet
//     config), so imports resolve through the "gc" importer exactly as
//     x/tools' unitchecker does.
//
// Type checking is best-effort: errors are collected, not fatal, and
// the typed analyzers degrade to silence where information is missing
// (fail-open — a broken build is reported by `go build`, not by a
// cascade of spurious lint findings).

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"sync"
)

// TypeInfo is the best-effort type-checking result for one package's
// non-test files.
type TypeInfo struct {
	// Pkg is the checked package object; non-nil even when Err is set
	// (go/types produces a partial package on soft errors).
	Pkg *types.Package
	// Info holds the resolved expression types, object uses/defs and
	// selections. All maps are non-nil; entries exist only where the
	// checker succeeded.
	Info *types.Info
	// Err is the first type error encountered, nil for a clean check.
	Err error
}

// typesState is the Program's lazily built type-checking machinery.
// It lives behind a pointer so Program literals in tests need not
// mention it.
type typesState struct {
	mu       sync.Mutex
	infos    map[string]*TypeInfo
	fallback types.Importer

	// atomicfield's module-wide index of atomically-accessed fields,
	// built once on first demand (see atomicfield.go).
	atomicOnce sync.Once
	atomicIdx  map[string]atomicUse

	// the interprocedural tier's call graph and memoized function
	// facts, built once on first demand (see callgraph.go).
	cgOnce sync.Once
	cg     *callGraph
}

// typeState returns the Program's memoization cell, creating it on
// first use.
func (prog *Program) typeState() *typesState {
	prog.typesOnce.Do(func() {
		prog.types = &typesState{infos: make(map[string]*TypeInfo)}
	})
	return prog.types
}

// importerFunc adapts a function to types.Importer (the same shim
// x/tools' unitchecker uses for the vet protocol's export-data maps).
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TypeCheck type-checks pkg's non-test files and memoizes the result.
// Concurrent callers are serialized; the importer is shared across
// packages so stdlib and module-local dependencies are checked once.
func (prog *Program) TypeCheck(fset *token.FileSet, pkg *Package) *TypeInfo {
	st := prog.typeState()
	st.mu.Lock()
	defer st.mu.Unlock()
	if ti, ok := st.infos[pkg.Path]; ok {
		return ti
	}
	if st.fallback == nil {
		if prog.VetImporter != nil {
			st.fallback = prog.VetImporter
		} else {
			// The "source" importer resolves module-local paths through
			// go/build (which consults the go command in module mode) and
			// typechecks the standard library from source — no export
			// data, no network, no third-party loader.
			st.fallback = importer.ForCompiler(fset, "source", nil)
		}
	}
	ti := &TypeInfo{Info: newTypesInfo()}
	var firstErr error
	conf := types.Config{
		Importer: st.fallback,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkgObj, err := conf.Check(pkg.Path, fset, pkg.Files, ti.Info)
	ti.Pkg = pkgObj
	if firstErr != nil {
		ti.Err = firstErr
	} else if err != nil {
		ti.Err = err
	}
	st.infos[pkg.Path] = ti
	return ti
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Types returns best-effort type information for the package under
// analysis. The result is memoized on the Program, so the three typed
// analyzers share one check per package.
func (p *Pass) Types() *TypeInfo {
	if p.Program == nil {
		return &TypeInfo{Info: newTypesInfo()}
	}
	return p.Program.TypeCheck(p.Fset, p.Pkg)
}

// fieldVarOf resolves a selector expression to the struct field it
// names, or nil when the selector is not a field access (method,
// package member, unresolved).
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	// Qualified identifiers (pkg.X) land in Uses, not Selections.
	if obj, ok := info.Uses[sel.Sel]; ok {
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// objKey returns a position-based identity for an object that is
// stable across separate type-checks of the same sources (the source
// importer re-parses imported packages into the same FileSet, so
// filename:line:col agrees even when the *types.Var pointers differ).
func objKey(fset *token.FileSet, obj types.Object) string {
	return fset.Position(obj.Pos()).String()
}

// pointerShaped reports whether values of t are stored directly in an
// interface word, so converting them to an interface type does not
// allocate.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
