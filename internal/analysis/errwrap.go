package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// ErrWrap enforces the repository's error conventions on the library
// surface (the module root package and every internal package;
// package main CLIs print user-facing errors and are exempt, as are
// tests):
//
//   - a fmt.Errorf / errors.New message must carry the package's error
//     prefix — "<pkgname>: ..." (the root package uses "crisprscan:") —
//     unless the format begins with a verb (dynamic prefixes like
//     "%s: %w" are fine);
//   - a fmt.Errorf that interpolates an error value (an identifier
//     named err / *Err / *err) must wrap it with %w, not flatten it
//     with %v or %s, so errors.Is/As keep working across the API.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "library errors must carry the \"<pkg>: \" prefix and wrap causes with %w " +
		"(fmt.Errorf), keeping errors.Is/As usable across the public surface",
	Run: runErrWrap,
}

// errIdentRe matches identifiers that by repo convention hold an error
// value: err, wrapped variants like scanErr, and errX locals.
var errIdentRe = regexp.MustCompile(`^(err|[a-zA-Z0-9_]*Err|err[A-Z][a-zA-Z0-9_]*)$`)

func runErrWrap(pass *Pass) error {
	if pass.Pkg.Name == "main" {
		return nil
	}
	mod := ""
	if pass.Program != nil {
		mod = pass.Program.ModulePath
	}
	isRoot := pass.Pkg.Path == mod
	if !isRoot && !strings.Contains(pass.Pkg.Path, "/internal/") {
		return nil
	}
	prefix := pass.Pkg.Name
	if isRoot {
		prefix = "crisprscan"
	}

	inspect(pass.Pkg.Files, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch {
		case x.Name == "fmt" && sel.Sel.Name == "Errorf":
			checkErrorf(pass, call, prefix)
		case x.Name == "errors" && sel.Sel.Name == "New":
			checkErrorsNew(pass, call, prefix)
		}
		return true
	})
	return nil
}

func stringArg(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func hasPrefixConvention(msg, prefix string) bool {
	if strings.HasPrefix(msg, "%") {
		return true // dynamic prefix such as "%s: %w"
	}
	return strings.HasPrefix(msg, prefix+": ")
}

func checkErrorf(pass *Pass, call *ast.CallExpr, prefix string) {
	if len(call.Args) == 0 {
		return
	}
	format, ok := stringArg(call.Args[0])
	if !ok {
		return
	}
	if !hasPrefixConvention(format, prefix) {
		pass.Reportf(call.Pos(), "error message %q lacks the %q prefix convention", format, prefix+": ")
	}
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		if errIdentRe.MatchString(id.Name) {
			pass.Reportf(arg.Pos(), "error value %s flattened into the message: wrap it with %%w so errors.Is/As keep working", id.Name)
		}
	}
}

func checkErrorsNew(pass *Pass, call *ast.CallExpr, prefix string) {
	if len(call.Args) != 1 {
		return
	}
	msg, ok := stringArg(call.Args[0])
	if !ok {
		return
	}
	if !hasPrefixConvention(msg, prefix) {
		pass.Reportf(call.Pos(), "error message %q lacks the %q prefix convention", msg, prefix+": ")
	}
}
