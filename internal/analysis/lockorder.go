package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockOrder enforces documented mutex discipline. A struct field whose
// doc or trailing comment says
//
//	// guarded by mu
//
// names the sibling mutex that protects it; every access to the field
// must then happen with that mutex held on all control-flow paths in
// the enclosing function. The check is a forward must-analysis over the
// approximate per-function CFG: mu.Lock()/RLock() generates the "held"
// fact, mu.Unlock()/RUnlock() kills it, a deferred unlock does not kill
// (the mutex stays held through the rest of the body), and joins
// intersect — an access reachable on any unlocked path is flagged.
//
// Two escape hatches keep the signal honest without suppression
// sprawl: functions whose name ends in "Locked" (the conventional
// caller-holds-the-lock suffix) are skipped, and function literals are
// skipped (a closure's locking context is its call sites', which a
// per-function analysis cannot see).
//
// Test files are exempt for the same reason as atomicfield: tests
// construct and inspect values single-goroutine, before and after the
// concurrency they exercise.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "fields documented `// guarded by <mu>` must only be accessed with " +
		"that mutex held on all paths in the enclosing function",
	Run: runLockOrder,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedField is one field carrying a guard annotation.
type guardedField struct {
	mu string // the documented mutex field name
}

// guardedFields collects the annotated fields declared in the package:
// objKey(field) -> guard. Guard comments are read from each field's doc
// group and trailing comment.
func guardedFields(pass *Pass, ti *TypeInfo) map[string]guardedField {
	out := make(map[string]guardedField)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := guardName(fld.Doc)
				if mu == "" {
					mu = guardName(fld.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range fld.Names {
					obj, ok := ti.Info.Defs[name]
					if !ok || obj == nil {
						continue
					}
					out[objKey(pass.Fset, obj)] = guardedField{mu: mu}
				}
			}
			return true
		})
	}
	return out
}

func guardName(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		if m := guardedByRe.FindStringSubmatch(c.Text); m != nil {
			return m[1]
		}
	}
	return ""
}

func runLockOrder(pass *Pass) error {
	ti := pass.Types()
	guards := guardedFields(pass, ti)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkLockOrder(pass, ti, guards, fd)
		}
	}
	return nil
}

// lockKey is the dataflow fact for "this mutex is held": the printed
// base expression joined with the mutex field name, so c.mu.Lock()
// guards c.sites but not other.sites.
func lockKey(base ast.Expr, mu string) string {
	return types.ExprString(base) + "." + mu
}

// lockCall decomposes expr as a Lock/RLock/Unlock/RUnlock method call
// on a mutex selector and returns the fact key and whether the call
// acquires (true) or releases (false). ok is false for anything else.
func lockCall(call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	switch mu := sel.X.(type) {
	case *ast.SelectorExpr:
		return lockKey(mu.X, mu.Sel.Name), acquire, true
	case *ast.Ident:
		return mu.Name, acquire, true
	}
	return "", false, false
}

// walkLeaf visits expressions inside a CFG leaf node, skipping function
// literals (their bodies have their own locking context) and, when
// skipDefer is set, deferred calls (a deferred Unlock does not release
// the mutex for the remainder of the body).
func walkLeaf(n ast.Node, skipDefer bool, visit func(n ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if skipDefer {
				return false
			}
		}
		return visit(n)
	})
}

func checkLockOrder(pass *Pass, ti *TypeInfo, guards map[string]guardedField, fd *ast.FuncDecl) {
	// Universe: every mutex fact the body can generate. Also an early
	// exit — a body that never locks anything and never touches a
	// guarded field costs nothing.
	universe := make(map[string]bool)
	touches := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if key, acquire, ok := lockCall(n); ok && acquire {
				universe[key] = true
			}
		case *ast.SelectorExpr:
			if field := fieldVarOf(ti.Info, n); field != nil {
				if _, ok := guards[objKey(pass.Fset, field)]; ok {
					touches = true
				}
			}
		}
		return true
	})
	if !touches {
		return
	}

	cfg := buildCFG(fd.Body)
	genKill := func(n ast.Node, held map[string]bool) {
		walkLeaf(n, true, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, acquire, ok := lockCall(call); ok {
					if acquire {
						held[key] = true
					} else {
						delete(held, key)
					}
				}
			}
			return true
		})
	}
	visit, _ := cfg.mustHeld(universe, genKill)
	visit(func(n ast.Node, held map[string]bool) {
		walkLeaf(n, false, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldVarOf(ti.Info, sel)
			if field == nil {
				return true
			}
			g, guarded := guards[objKey(pass.Fset, field)]
			if !guarded {
				return true
			}
			need := lockKey(sel.X, g.mu)
			if !held[need] {
				pass.Reportf(sel.Pos(), "field %s is documented `guarded by %s` but accessed without %s held on all paths in %s",
					field.Name(), g.mu, need, fd.Name.Name)
			}
			return true
		})
	})
}
