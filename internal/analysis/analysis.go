// Package analysis is a self-contained static-analysis framework for
// the crisprscan repository, modeled on golang.org/x/tools/go/analysis
// but built only on the standard library so the repo stays
// dependency-free. It hosts the crisprlint analyzers that turn the
// repo's cross-cutting invariants — engine-registry parity, DNA
// alphabet hygiene, stats discipline, error-wrapping convention,
// deterministic timing models, and context propagation through the
// scan pipeline — into machine-checked rules.
//
// The framework has four tiers. The first-tier analyzers are purely
// syntactic (AST + token positions). The typed tier (typecheck.go)
// adds best-effort go/types information — via the stdlib source
// importer standalone, or the go command's export data under the vet
// protocol — for the hot-path analyzers: hotpath (allocation
// freedom in annotated scan kernels), atomicfield (no torn counters),
// lockorder (documented mutex discipline), boundshint (BCE-defeating
// slice access shapes in hot loops), and loopinvariant (loop-invariant
// computation in hot loops, gated by must-analysis). The interprocedural
// tier (callgraph.go) builds a conservative module-wide call graph on
// top of the typed tier and derives per-function facts — never
// returns, transitive mutex acquisitions, lock-order edges — for the
// concurrency analyzers: goroutineleak, chandiscipline, waitsync, and
// lockcycle. Under the vet protocol those facts serialize to the
// .vetx file the go command manages per package, so cross-package
// conclusions survive per-package analysis. The fourth, compiler-
// feedback tier lives outside the analyzer list: internal/perfgate and
// cmd/perfgate close the loop by gating the compiler's own escape,
// inlining, and bounds-check verdicts for the same hotpath spans
// against a justified baseline. Either way the driver
// works both as a standalone multichecker (cmd/crisprlint) and as a
// `go vet -vettool` backend, with no network or third-party
// dependencies.
//
// Suppression: a diagnostic can be silenced with a directive comment
//
//	//crisprlint:allow <analyzer>[,<analyzer>...] reason...
//
// placed on the flagged line or the line immediately above it. The
// reason text is free-form but encouraged; the directive without an
// analyzer name is invalid and suppresses nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //crisprlint:allow directives.
	Name string
	// Doc is the one-paragraph description shown by `crisprlint help`.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Package is the syntax of one loaded package.
type Package struct {
	// Path is the import path ("github.com/cap-repro/crisprscan/internal/core").
	Path string
	// Name is the package name ("core").
	Name string
	// Dir is the directory holding the sources.
	Dir string
	// Files holds the non-test files.
	Files []*ast.File
	// TestFiles holds the _test.go files (in-package and external).
	TestFiles []*ast.File
	// Generated marks filenames (as recorded in the FileSet) carrying a
	// `// Code generated ... DO NOT EDIT.` header. Generated files stay
	// in Files so type checking sees the whole package, but diagnostics
	// landing in them are dropped by the driver.
	Generated map[string]bool
}

// AllFiles returns non-test files followed by test files.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return out
}

// Program is the whole loaded module: it gives analyzers cross-package
// visibility (used by enginereg to compare the public API against the
// internal registry). In per-package drivers (the vet protocol) it
// holds only the package under analysis, and cross-package checks
// degrade gracefully to no-ops.
type Program struct {
	// ModulePath is the module's import-path prefix.
	ModulePath string
	// Packages maps import path to syntax.
	Packages map[string]*Package
	// VetImporter, when set by the vet-protocol driver, resolves imports
	// from the export data the go command supplies; when nil the typed
	// tier falls back to the stdlib source importer.
	VetImporter types.Importer
	// VetFactFiles, when set by the vet-protocol driver, maps the import
	// path of each dependency to its serialized fact file (the .vetx the
	// go command produced by running crisprlint on that dependency). The
	// interprocedural tier reads callee summaries from it; missing
	// entries degrade to conservative assumptions.
	VetFactFiles map[string]string

	typesOnce sync.Once
	types     *typesState
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Program  *Program

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// InModulePackage reports whether the analyzed package's import path is
// exactly the module root or sits under it at the given suffix
// ("internal/dna"). An empty suffix matches the module root package.
func (p *Pass) InModulePackage(suffix string) bool {
	mod := ""
	if p.Program != nil {
		mod = p.Program.ModulePath
	}
	if suffix == "" {
		return p.Pkg.Path == mod
	}
	if mod != "" {
		return p.Pkg.Path == mod+"/"+suffix
	}
	return strings.HasSuffix(p.Pkg.Path, "/"+suffix) || p.Pkg.Path == suffix
}

// allowRe matches the suppression directive. Group 1 is the
// comma-separated analyzer list.
var allowRe = regexp.MustCompile(`^//crisprlint:allow\s+([A-Za-z0-9_,-]+)(\s|$)`)

// allowedLines returns, per filename, the set of "line:analyzer" keys
// suppressed by //crisprlint:allow directives. A directive covers its
// own line and the line below it (so it works both as a trailing
// comment and as a standalone comment above the flagged statement).
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]bool {
	allowed := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					allowed[fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line, name)] = true
					allowed[fmt.Sprintf("%s:%d:%s", pos.Filename, pos.Line+1, name)] = true
				}
			}
		}
	}
	return allowed
}

// RunAnalyzers applies every analyzer to every package of prog and
// returns the surviving diagnostics sorted by position. Analyzer
// errors (not findings) abort the run.
func RunAnalyzers(fset *token.FileSet, prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	paths := make([]string, 0, len(prog.Packages))
	for path := range prog.Packages {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		pkg := prog.Packages[path]
		allowed := allowedLines(fset, pkg.AllFiles())
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, Program: prog}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, path, err)
			}
			for _, d := range pass.diagnostics {
				p := fset.Position(d.Pos)
				if allowed[fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, d.Analyzer)] {
					continue
				}
				if pkg.Generated[p.Filename] {
					continue
				}
				all = append(all, d)
			}
		}
	}
	// Deterministic order — (file, line, column, analyzer) — so repeated
	// runs and the -json report diff cleanly.
	sort.Slice(all, func(i, j int) bool {
		pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// All returns the crisprlint analyzers in stable order: the syntactic
// checkers from the first tier, the three type-checked ones, then the
// interprocedural concurrency tier.
func All() []*Analyzer {
	return []*Analyzer{
		EngineReg, DNAAlphabet, StatsDiscipline, ErrWrap, ClockGuard, CtxFlow,
		LogDiscipline, DeferLoop,
		HotPath, AtomicField, LockOrder, BoundsHint, LoopInvariant, SpanEnd,
		GoroutineLeak, ChanDiscipline, WaitSync, LockCycle,
	}
}

// inspect walks every node of the files, calling fn; fn returning
// false prunes the subtree.
func inspect(files []*ast.File, fn func(ast.Node) bool) {
	for _, f := range files {
		ast.Inspect(f, fn)
	}
}
