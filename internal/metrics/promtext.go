package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a stdlib-only encoder for the Prometheus text exposition
// format, version 0.0.4 (the format every Prometheus server scrapes):
// one `# HELP` and `# TYPE` header per metric family, one sample per
// line, label values escaped, histograms rendered as cumulative `le`
// buckets plus `_sum` and `_count`. Metric families under the
// crisprscan_* namespace are defined in WriteSnapshot; callers with
// extra gauges (per-scan progress, build info) append them through the
// same encoder so family uniqueness is enforced in one place.

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// PromEncoder streams one exposition document. Errors are sticky and
// surfaced by Err, so call sites can chain writes unchecked.
type PromEncoder struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

// NewPromEncoder starts an exposition document on w.
func NewPromEncoder(w io.Writer) *PromEncoder {
	return &PromEncoder{w: w, seen: make(map[string]bool)}
}

// Err returns the first write or format error.
func (e *PromEncoder) Err() error { return e.err }

// Family writes the HELP/TYPE header for a metric family. Declaring
// the same family twice is an error — a scrape with duplicate families
// is rejected by Prometheus, so the encoder enforces uniqueness at
// generation time.
func (e *PromEncoder) Family(name, help, typ string) {
	if e.err != nil {
		return
	}
	if e.seen[name] {
		e.err = fmt.Errorf("metrics: duplicate metric family %q", name)
		return
	}
	e.seen[name] = true
	_, e.err = fmt.Fprintf(e.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample writes one sample line. The family must have been declared
// (histogram series use their parent family's name plus a suffix and
// are exempt from the check).
func (e *PromEncoder) Sample(name string, labels []Label, value float64) {
	if e.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(value))
	b.WriteByte('\n')
	_, e.err = io.WriteString(e.w, b.String())
}

// Histogram renders a HistogramSnapshot as one Prometheus histogram
// family: cumulative le buckets (seconds), +Inf, _sum and _count.
func (e *PromEncoder) Histogram(name, help string, labels []Label, h HistogramSnapshot) {
	e.Family(name, help, "histogram")
	cum := int64(0)
	for _, b := range h.Buckets {
		if b.UpperNs == math.MaxInt64 {
			// The saturated top bucket folds into the +Inf series below.
			break
		}
		cum += b.Count
		e.Sample(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", formatValue(secondsOf(b.UpperNs))}), float64(cum))
	}
	e.Sample(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", "+Inf"}), float64(h.Count))
	e.Sample(name+"_sum", labels, h.MeanSec*float64(h.Count))
	e.Sample(name+"_count", labels, float64(h.Count))
}

// WriteSnapshot renders a metrics snapshot as the core crisprscan_*
// families: per-phase time counters, event counters, the chunk-latency
// histogram, and modeled device-time steps. labels (for example a
// lifetime/live distinction) are applied to every sample.
func (e *PromEncoder) WriteSnapshot(s *Snapshot, labels ...Label) {
	if s == nil {
		s = &Snapshot{}
	}
	e.Family("crisprscan_phase_seconds_total", "Wall-clock seconds accumulated per scan pipeline phase.", "counter")
	for p := Phase(0); p < NumPhases; p++ {
		e.Sample("crisprscan_phase_seconds_total",
			append(labels[:len(labels):len(labels)], Label{"phase", p.String()}), phaseSeconds(s, p))
	}

	for c := Counter(0); c < NumCounters; c++ {
		name := "crisprscan_" + c.String() + "_total"
		e.Family(name, counterHelp(c), "counter")
		e.Sample(name, labels, float64(counterValue(s, c)))
	}

	e.Histogram("crisprscan_chunk_latency_seconds",
		"Per-chunk scan latency across the worker pool (log2 sketch).", labels, s.ChunkLatency)

	if len(s.ModeledSec) > 0 {
		e.Family("crisprscan_modeled_seconds_total",
			"Analytic accelerator-model device time per step.", "counter")
		steps := make([]string, 0, len(s.ModeledSec))
		for k := range s.ModeledSec {
			steps = append(steps, k)
		}
		sort.Strings(steps)
		for _, k := range steps {
			e.Sample("crisprscan_modeled_seconds_total",
				append(labels[:len(labels):len(labels)], Label{"step", k}), s.ModeledSec[k])
		}
	}
}

// WriteScanProgress renders one scan's live progress gauges under the
// given labels (typically scan id + engine).
func (e *PromEncoder) WriteScanProgress(ps ProgressSnapshot, labels []Label) {
	e.declareOnce("crisprscan_scan_progress_fraction", "Completed fraction of the scan's genome (0..1).", "gauge")
	e.Sample("crisprscan_scan_progress_fraction", labels, ps.Fraction)
	e.declareOnce("crisprscan_scan_scanned_bytes", "Reference bases scanned so far by the scan.", "gauge")
	e.Sample("crisprscan_scan_scanned_bytes", labels, float64(ps.ScannedBytes))
	e.declareOnce("crisprscan_scan_throughput_bytes_per_second", "EWMA scan throughput.", "gauge")
	e.Sample("crisprscan_scan_throughput_bytes_per_second", labels, ps.ThroughputBPS)
	e.declareOnce("crisprscan_scan_eta_seconds", "Estimated seconds to scan completion (-1 = unknown).", "gauge")
	e.Sample("crisprscan_scan_eta_seconds", labels, ps.ETASec)
	e.declareOnce("crisprscan_scan_elapsed_seconds", "Seconds since the scan started.", "gauge")
	e.Sample("crisprscan_scan_elapsed_seconds", labels, ps.ElapsedSec)
}

// declareOnce declares a family on first use; later calls (one per
// in-flight scan) just append samples.
func (e *PromEncoder) declareOnce(name, help, typ string) {
	if e.seen[name] {
		return
	}
	e.Family(name, help, typ)
}

// phaseSeconds indexes a snapshot's phase block by enum.
func phaseSeconds(s *Snapshot, p Phase) float64 {
	switch p {
	case PhaseLoad:
		return s.Phases.Load
	case PhaseCompile:
		return s.Phases.Compile
	case PhasePrefilter:
		return s.Phases.Prefilter
	case PhaseVerify:
		return s.Phases.Verify
	case PhaseReport:
		return s.Phases.Report
	}
	return 0
}

// counterValue indexes a snapshot's counter block by enum.
func counterValue(s *Snapshot, c Counter) int64 {
	switch c {
	case CounterBytesScanned:
		return s.Counters.BytesScanned
	case CounterCandidateWindows:
		return s.Counters.CandidateWindows
	case CounterPrefilterHits:
		return s.Counters.PrefilterHits
	case CounterVerifications:
		return s.Counters.Verifications
	case CounterSitesEmitted:
		return s.Counters.SitesEmitted
	case CounterChunksDispatched:
		return s.Counters.ChunksDispatched
	case CounterPanicsRecovered:
		return s.Counters.PanicsRecovered
	}
	return 0
}

// counterHelp is the HELP text per counter family.
func counterHelp(c Counter) string {
	switch c {
	case CounterBytesScanned:
		return "Reference bases streamed through the engine."
	case CounterCandidateWindows:
		return "Window positions examined as potential sites."
	case CounterPrefilterHits:
		return "Candidates surviving the literal prefilter stage."
	case CounterVerifications:
		return "Full pattern evaluations performed."
	case CounterSitesEmitted:
		return "Verified, deduplicated sites delivered."
	case CounterChunksDispatched:
		return "Worker-pool work units executed."
	case CounterPanicsRecovered:
		return "Worker panics isolated into errors."
	}
	return c.String()
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// escapeHelp escapes HELP text (backslash and newline only).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
