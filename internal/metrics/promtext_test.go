package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// parseExposition is a minimal 0.0.4 validator: it checks HELP/TYPE
// pairing, family uniqueness, sample→family attribution, and returns
// the samples keyed by full series (name + label block).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	families := make(map[string]string) // name -> type
	var helped []string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if _, dup := families[parts[0]]; dup {
				t.Errorf("line %d: duplicate metric family %s", ln+1, parts[0])
			}
			families[parts[0]] = ""
			helped = append(helped, parts[0])
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typ, ok := families[parts[0]]
			if !ok {
				t.Errorf("line %d: TYPE before HELP for %s", ln+1, parts[0])
			}
			if typ != "" {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, parts[0])
			}
			families[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		name := series
		if b := strings.IndexByte(series, '{'); b >= 0 {
			name = series[:b]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) {
				if typ, ok := families[strings.TrimSuffix(name, suf)]; ok && typ == "histogram" {
					base = strings.TrimSuffix(name, suf)
				}
			}
		}
		if _, ok := families[base]; !ok {
			t.Errorf("line %d: sample %s has no declared family", ln+1, name)
		}
		var v float64
		if valStr == "+Inf" {
			v = math.Inf(1)
		} else {
			var err error
			v, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
			}
		}
		if _, dup := samples[series]; dup {
			t.Errorf("line %d: duplicate series %s", ln+1, series)
		}
		samples[series] = v
	}
	for name, typ := range families {
		if typ == "" {
			t.Errorf("family %s has HELP but no TYPE", name)
		}
	}
	return samples
}

func TestWriteSnapshotExposition(t *testing.T) {
	r := NewRecorder()
	r.Add(CounterBytesScanned, 12345)
	r.Add(CounterSitesEmitted, 7)
	r.AddPhaseNanos(PhasePrefilter, 3e9)
	r.AddModeledSeconds("kernel", 0.25)
	r.AddModeledSeconds("transfer", 0.125)
	r.StartChunk("c", 64)()
	r.StartChunk("c", 64)()
	snap := r.Snapshot()

	var b strings.Builder
	e := NewPromEncoder(&b)
	e.WriteSnapshot(snap)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())

	if got := samples["crisprscan_bytes_scanned_total"]; got != 12345 {
		t.Errorf("bytes_scanned = %v", got)
	}
	if got := samples["crisprscan_sites_emitted_total"]; got != 7 {
		t.Errorf("sites_emitted = %v", got)
	}
	if got := samples[`crisprscan_phase_seconds_total{phase="prefilter"}`]; got != 3 {
		t.Errorf("prefilter phase = %v", got)
	}
	if got := samples[`crisprscan_modeled_seconds_total{step="kernel"}`]; got != 0.25 {
		t.Errorf("modeled kernel = %v", got)
	}
	if got := samples["crisprscan_chunk_latency_seconds_count"]; got != 2 {
		t.Errorf("hist count = %v", got)
	}
	if got := samples[`crisprscan_chunk_latency_seconds_bucket{le="+Inf"}`]; got != 2 {
		t.Errorf("hist +Inf bucket = %v", got)
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	var h Histogram
	h.Observe(100) // bucket [64,128)
	h.Observe(100)
	h.Observe(5000) // bucket [4096,8192)
	var b strings.Builder
	e := NewPromEncoder(&b)
	e.Histogram("x_seconds", "test", nil, h.Snapshot())
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	le128 := samples[fmt.Sprintf(`x_seconds_bucket{le="%s"}`, formatValue(secondsOf(128)))]
	le8192 := samples[fmt.Sprintf(`x_seconds_bucket{le="%s"}`, formatValue(secondsOf(8192)))]
	if le128 != 2 || le8192 != 3 {
		t.Errorf("cumulative buckets: le128=%v le8192=%v, want 2, 3\n%s", le128, le8192, b.String())
	}
	if samples[`x_seconds_bucket{le="+Inf"}`] != 3 {
		t.Errorf("+Inf bucket = %v", samples[`x_seconds_bucket{le="+Inf"}`])
	}
}

func TestPromEncoderRejectsDuplicateFamily(t *testing.T) {
	var b strings.Builder
	e := NewPromEncoder(&b)
	e.Family("x_total", "a", "counter")
	e.Family("x_total", "a", "counter")
	if e.Err() == nil {
		t.Fatal("duplicate family accepted")
	}
}

func TestPromEncoderEscapesLabels(t *testing.T) {
	var b strings.Builder
	e := NewPromEncoder(&b)
	e.Family("x_total", "a", "counter")
	e.Sample("x_total", []Label{{"chrom", "a\"b\\c\nd"}}, 1)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	want := `x_total{chrom="a\"b\\c\nd"} 1` + "\n"
	if !strings.HasSuffix(b.String(), want) {
		t.Errorf("escaped sample = %q, want suffix %q", b.String(), want)
	}
}

func TestWriteScanProgressGauges(t *testing.T) {
	p := NewProgress()
	p.SetTotalBytes(100)
	p.StartChrom("chr1", 100)
	p.AddBytes(40)
	var b strings.Builder
	e := NewPromEncoder(&b)
	labels := []Label{{"scan", "1"}, {"engine", "hyperscan"}}
	e.WriteScanProgress(p.Snapshot(), labels)
	// A second scan reuses the declared families without duplicating them.
	e.WriteScanProgress(p.Snapshot(), []Label{{"scan", "2"}, {"engine", "casot"}})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	if got := samples[`crisprscan_scan_progress_fraction{scan="1",engine="hyperscan"}`]; got != 0.4 {
		t.Errorf("fraction = %v, want 0.4", got)
	}
	if got := samples[`crisprscan_scan_scanned_bytes{scan="2",engine="casot"}`]; got != 40 {
		t.Errorf("scan 2 bytes = %v", got)
	}
}
