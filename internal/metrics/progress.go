package metrics

import (
	"math"
	"sync"
	"sync/atomic"
)

// Progress tracks one scan's advance through a genome for live
// operational telemetry: bytes scanned versus total genome size,
// per-chromosome completion, an EWMA throughput estimate and an ETA.
// It is fed from two directions — the arch.ChunkScan worker pool
// reports fine-grained byte advances per completed chunk (via the
// Recorder it already receives), and the orchestrator brackets each
// chromosome with StartChrom/FinishChrom, which reconciles the chunk
// accounting against the authoritative chromosome length (chunked
// engines advance positions, which undercount by up to one window
// length per chromosome; unchunked engines advance nothing at all).
//
// All methods are safe for concurrent use and are no-ops on a nil
// receiver, matching the Recorder's nil fast path: uninstrumented scans
// pay one nil check per chunk and nothing else.
//
// Monotonicity contract: ScannedBytes and Fraction in successive
// Snapshots never decrease, and Fraction reaches exactly 1.0 only
// after Finish. The /debug/scans admin endpoint and its -race scrape
// test rely on this.
type Progress struct {
	// totalBytes is the genome size denominator (0 = unknown). For
	// in-memory searches the orchestrator sets it exactly; for streaming
	// scans the caller may supply an estimate (FASTA file size).
	totalBytes atomic.Int64
	// chunkBytes accumulates per-chunk position advances — the hot-path
	// counter the worker pool bumps.
	chunkBytes atomic.Int64
	// scannedFloor is the authoritative completed-bytes floor: the sum
	// of finished chromosomes' lengths. Published atomically so
	// Snapshot never reads a torn pair.
	scannedFloor atomic.Int64
	// chunkBase is chunkBytes' value when scannedFloor last advanced;
	// the delta above it is in-flight progress inside the current
	// chromosome.
	chunkBase atomic.Int64
	// startNs is the monotonic clock at first activity (0 = not started).
	startNs atomic.Int64
	// finished flips once when the scan completes successfully.
	finished atomic.Bool

	mu sync.Mutex
	// chroms records per-chromosome state in scan order. guarded by mu
	chroms []ChromProgress // guarded by mu
	// chromIndex maps chromosome name to its chroms slot. guarded by mu
	chromIndex map[string]int // guarded by mu
	// current is the chromosome being scanned ("" between). guarded by mu
	current string // guarded by mu
	// currentLen is the current chromosome's length. guarded by mu
	currentLen int64 // guarded by mu
	// chromTotal is the expected chromosome count (0 = unknown, as in
	// streaming scans). guarded by mu
	chromTotal int // guarded by mu
	// EWMA throughput state: the last sample point and the smoothed
	// bytes/sec estimate. guarded by mu
	ewmaBps   float64 // guarded by mu
	lastNs    int64   // guarded by mu
	lastBytes int64   // guarded by mu
}

// ewmaTauNs is the EWMA time constant: samples older than ~5s have
// decayed to 1/e weight, so the throughput estimate follows load shifts
// (a repeat-dense chromosome, a worker stall) within seconds while
// smoothing per-chunk jitter.
const ewmaTauNs = 5e9

// NewProgress returns an idle tracker.
func NewProgress() *Progress { return &Progress{} }

// SetTotalBytes sets the genome-size denominator. For streaming scans
// the caller typically passes the FASTA file size as an estimate; the
// in-memory orchestrator sets the exact total if none was supplied.
func (p *Progress) SetTotalBytes(n int64) {
	if p == nil || n < 0 {
		return
	}
	p.totalBytes.Store(n)
}

// TotalBytes returns the configured denominator (0 = unknown).
func (p *Progress) TotalBytes() int64 {
	if p == nil {
		return 0
	}
	return p.totalBytes.Load()
}

// SetChromCount announces how many chromosomes the scan will cover,
// when known up front (in-memory searches; streaming scans discover
// chromosomes as the FASTA parser reaches them).
func (p *Progress) SetChromCount(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.chromTotal = n
	p.mu.Unlock()
}

// StartChrom marks a chromosome as entering the scan.
func (p *Progress) StartChrom(name string, bytes int64) {
	if p == nil {
		return
	}
	p.touchStart()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.chromIndex == nil {
		p.chromIndex = make(map[string]int)
	}
	if _, ok := p.chromIndex[name]; !ok {
		p.chromIndex[name] = len(p.chroms)
		p.chroms = append(p.chroms, ChromProgress{Name: name, Bytes: bytes})
	}
	p.current = name
	p.currentLen = bytes
}

// FinishChrom marks a chromosome complete and reconciles the byte
// accounting: the completed-bytes floor advances by the chromosome's
// full length, and subsequent chunk advances count against the next
// chromosome.
func (p *Progress) FinishChrom(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.chromIndex[name]
	if !ok || p.chroms[i].Done {
		return
	}
	p.chroms[i].Done = true
	p.scannedFloor.Add(p.chroms[i].Bytes)
	p.chunkBase.Store(p.chunkBytes.Load())
	if p.current == name {
		p.current = ""
		p.currentLen = 0
	}
	p.sampleLocked()
}

// AddBytes records a fine-grained advance of n input positions — the
// per-chunk hot path the worker pool calls. The EWMA sample is taken
// under a TryLock so a contended scrape never blocks a worker; skipped
// samples are not lost (throughput derives from the cumulative
// counter, not per-call deltas).
func (p *Progress) AddBytes(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.touchStart()
	p.chunkBytes.Add(n)
	if p.mu.TryLock() {
		p.sampleLocked()
		p.mu.Unlock()
	}
}

// Finish marks the scan successfully complete: the fraction becomes
// exactly 1.0 and the ETA drops to zero. Aborted scans must not call
// it — their last snapshot keeps the partial fraction.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.touchStart()
	p.finished.Store(true)
}

// touchStart arms the elapsed clock on first activity.
func (p *Progress) touchStart() {
	if p.startNs.Load() == 0 {
		p.startNs.CompareAndSwap(0, Now())
	}
}

// sampleLocked folds the growth of the cumulative byte counter since
// the last sample into the EWMA throughput. Caller holds mu.
func (p *Progress) sampleLocked() {
	now := Now()
	bytes := p.scannedBytes()
	if p.lastNs == 0 {
		p.lastNs, p.lastBytes = now, bytes
		return
	}
	dt := now - p.lastNs
	if dt <= 0 {
		return
	}
	inst := float64(bytes-p.lastBytes) / (float64(dt) / 1e9)
	// Time-constant EWMA: the blend weight grows with the gap since the
	// previous sample, so irregular chunk completions are weighted by
	// the interval they actually cover.
	w := 1 - math.Exp(-float64(dt)/ewmaTauNs)
	p.ewmaBps += w * (inst - p.ewmaBps)
	p.lastNs, p.lastBytes = now, bytes
}

// scannedBytes combines the completed-chromosome floor with the raw
// in-flight chunk delta (unclamped — throughput sampling only needs
// growth, not the display value). Caller holds mu.
func (p *Progress) scannedBytes() int64 {
	floor := p.scannedFloor.Load()
	delta := p.chunkBytes.Load() - p.chunkBase.Load()
	if delta < 0 {
		delta = 0
	}
	return floor + delta
}

// ChromProgress is one chromosome's completion state.
type ChromProgress struct {
	// Name is the chromosome's FASTA identifier.
	Name string `json:"name"`
	// Bytes is the chromosome's length in bases.
	Bytes int64 `json:"bytes"`
	// Done reports whether the chromosome completed (its sites, if any,
	// have been delivered).
	Done bool `json:"done"`
}

// ProgressSnapshot is an immutable view of a tracker, JSON-ready for
// the /debug/scans admin endpoint.
type ProgressSnapshot struct {
	// TotalBytes is the genome-size denominator (0 = unknown).
	TotalBytes int64 `json:"total_bytes"`
	// ScannedBytes is the monotonic bytes-scanned estimate: completed
	// chromosomes plus in-flight chunk progress.
	ScannedBytes int64 `json:"scanned_bytes"`
	// Fraction is ScannedBytes/TotalBytes in [0,1]; it is pinned below
	// 1.0 until the scan finishes and exactly 1.0 after.
	Fraction float64 `json:"fraction"`
	// ThroughputBPS is the EWMA scan throughput in bytes/second (the
	// lifetime average until enough samples accumulate).
	ThroughputBPS float64 `json:"throughput_bps"`
	// ETASec is the estimated seconds to completion (-1 = unknown, 0
	// once finished).
	ETASec float64 `json:"eta_sec"`
	// ElapsedSec is seconds since the scan's first activity.
	ElapsedSec float64 `json:"elapsed_sec"`
	// Done reports successful completion.
	Done bool `json:"done"`
	// CurrentChrom names the chromosome being scanned ("" between
	// chromosomes or when done).
	CurrentChrom string `json:"current_chrom,omitempty"`
	// ChromsDone / ChromsTotal count chromosome completion; ChromsTotal
	// is 0 when unknown (streaming scans discover chromosomes lazily).
	ChromsDone  int `json:"chroms_done"`
	ChromsTotal int `json:"chroms_total,omitempty"`
	// Chroms lists per-chromosome state in scan order.
	Chroms []ChromProgress `json:"chroms,omitempty"`
}

// Snapshot returns a consistent view of the tracker. It is safe to call
// at any scrape rate while the scan runs.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{ETASec: -1}
	}
	var s ProgressSnapshot
	s.TotalBytes = p.totalBytes.Load()
	s.Done = p.finished.Load()
	if start := p.startNs.Load(); start != 0 {
		s.ElapsedSec = secondsOf(Now() - start)
	}

	p.mu.Lock()
	floor := p.scannedFloor.Load()
	delta := p.chunkBytes.Load() - p.chunkBase.Load()
	if delta < 0 {
		delta = 0
	}
	if p.currentLen > 0 && delta > p.currentLen {
		delta = p.currentLen
	}
	s.ScannedBytes = floor + delta
	s.CurrentChrom = p.current
	s.ChromsTotal = p.chromTotal
	for _, c := range p.chroms {
		if c.Done {
			s.ChromsDone++
		}
	}
	s.Chroms = append([]ChromProgress(nil), p.chroms...)
	s.ThroughputBPS = p.ewmaBps
	p.mu.Unlock()

	if s.Done && s.TotalBytes > 0 {
		s.ScannedBytes = s.TotalBytes
	}
	if s.ThroughputBPS == 0 && s.ElapsedSec > 0 {
		s.ThroughputBPS = float64(s.ScannedBytes) / s.ElapsedSec
	}
	s.Fraction, s.ETASec = fractionETA(s)
	return s
}

// fractionETA derives the completion fraction and ETA from a snapshot's
// raw fields.
func fractionETA(s ProgressSnapshot) (frac, eta float64) {
	if s.Done {
		return 1, 0
	}
	if s.TotalBytes <= 0 {
		return 0, -1
	}
	frac = float64(s.ScannedBytes) / float64(s.TotalBytes)
	// Pin below 1.0 until Finish: a streaming total is an estimate
	// (file size includes FASTA headers/newlines), so the raw ratio can
	// touch or cross 1 while the scan is still running.
	if frac > 0.999 {
		frac = 0.999
	}
	if frac < 0 {
		frac = 0
	}
	if s.ThroughputBPS > 0 {
		remaining := s.TotalBytes - s.ScannedBytes
		if remaining < 0 {
			remaining = 0
		}
		return frac, float64(remaining) / s.ThroughputBPS
	}
	return frac, -1
}
