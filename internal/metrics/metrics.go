// Package metrics is the scan-observability subsystem: a
// zero-dependency, low-overhead instrumentation layer that every
// execution engine and the orchestrator report into. It provides
//
//   - monotonic phase timers for the five pipeline stages
//     (load / compile / prefilter / verify / report),
//   - atomic event counters (bytes scanned, candidate windows,
//     prefilter hits, verifications, sites emitted, chunks dispatched,
//     worker panics recovered),
//   - a log2-bucketed histogram sketch of per-chunk scan latency, and
//   - pluggable trace hooks (Tracer) that can render any scan as a
//     Chrome trace-event timeline.
//
// A *Recorder is shared by the orchestrator, the arch.ChunkScan worker
// pool and the engines; every Search* result carries an immutable
// Snapshot of it. All Recorder methods are safe for concurrent use and
// are no-ops on a nil receiver, so uninstrumented paths (direct engine
// benchmarks, the accelerator models' analytic code) pay only a nil
// check.
//
// This package is also the module's single clock authority: the
// clockguard analyzer forbids raw time.Now/time.Since everywhere else,
// so wall-clock reads funnel through Now/Stopwatch/Wall here and the
// modeled platforms provably stay analytic.
package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Phase identifies one stage of the search pipeline.
type Phase uint8

// The pipeline stages, in execution order.
const (
	// PhaseLoad is input decoding: FASTA parsing and sequence packing
	// (only the streaming pipeline loads inside the measured region;
	// in-memory searches load before Search starts and report zero).
	PhaseLoad Phase = iota
	// PhaseCompile is pattern-set compilation: guide expansion, automata
	// construction, engine build, device placement.
	PhaseCompile
	// PhasePrefilter is the raw engine scan — the candidate-generating
	// pass (literal prefilter, bitap sweep, automata simulation, ...)
	// excluding the per-event verification charged to PhaseVerify.
	PhasePrefilter
	// PhaseVerify is event resolution: re-verifying each raw match
	// against the sequence, mismatch counting and deduplication.
	PhaseVerify
	// PhaseReport is output assembly: site sorting, coordinate
	// adjustment and delivery to the caller.
	PhaseReport
	// NumPhases bounds the Phase enum.
	NumPhases
)

// String returns the canonical lower-case phase name.
func (p Phase) String() string {
	switch p {
	case PhaseLoad:
		return "load"
	case PhaseCompile:
		return "compile"
	case PhasePrefilter:
		return "prefilter"
	case PhaseVerify:
		return "verify"
	case PhaseReport:
		return "report"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Counter identifies one atomic event counter.
type Counter uint8

// The counters every instrumented scan maintains.
const (
	// CounterBytesScanned counts reference bases streamed through the
	// engine — the throughput denominator. It is incremented once per
	// completed chromosome by the orchestrator (never per chunk, where
	// overlap regions would double-count; see the accounting regression
	// tests in internal/core).
	CounterBytesScanned Counter = iota
	// CounterCandidateWindows counts window positions the engine
	// examined as potential sites (for CasOT, positions x patterns,
	// matching its per-guide rescan cost structure).
	CounterCandidateWindows
	// CounterPrefilterHits counts candidate windows that survived the
	// cheap first stage (PAM literal filter); zero for engines without a
	// staged prefilter.
	CounterPrefilterHits
	// CounterVerifications counts full pattern evaluations performed on
	// surviving candidates (packed XOR/popcount confirms, byte-wise
	// mismatch counts).
	CounterVerifications
	// CounterSitesEmitted counts verified, deduplicated sites delivered
	// to the caller.
	CounterSitesEmitted
	// CounterChunksDispatched counts work units handed to the
	// arch.ChunkScan worker pool.
	CounterChunksDispatched
	// CounterPanicsRecovered counts worker panics converted to errors
	// by the pool's isolation guard.
	CounterPanicsRecovered
	// NumCounters bounds the Counter enum.
	NumCounters
)

// String returns the canonical snake_case counter name.
func (c Counter) String() string {
	switch c {
	case CounterBytesScanned:
		return "bytes_scanned"
	case CounterCandidateWindows:
		return "candidate_windows"
	case CounterPrefilterHits:
		return "prefilter_hits"
	case CounterVerifications:
		return "verifications"
	case CounterSitesEmitted:
		return "sites_emitted"
	case CounterChunksDispatched:
		return "chunks_dispatched"
	case CounterPanicsRecovered:
		return "panics_recovered"
	}
	return fmt.Sprintf("counter(%d)", int(c))
}

// Recorder accumulates metrics for one search execution. The zero
// value is not usable; construct with NewRecorder. A nil *Recorder is
// a valid no-op sink for every method.
type Recorder struct {
	phases   [NumPhases]atomic.Int64
	counters [NumCounters]atomic.Int64
	chunkLat Histogram

	// tracer is set once before scanning via SetTracer; spans are
	// emitted only while non-nil.
	tracer Tracer

	// traceID is set once before scanning via SetTraceID; while
	// non-empty, chunk latencies carry it as a histogram exemplar so a
	// slow bucket links to the concrete trace that produced it.
	traceID string

	// progress is set once before scanning via SetProgress; chunk
	// completions advance it only while non-nil.
	progress *Progress

	// modeled holds the analytic device-time entries the accelerator
	// models record (seconds, keyed by model step).
	mu      sync.Mutex
	modeled map[string]float64 // guarded by mu
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetTracer installs t as the span sink. Call before scanning starts;
// a nil t detaches tracing.
func (r *Recorder) SetTracer(t Tracer) {
	if r == nil {
		return
	}
	r.tracer = t
}

// Tracer returns the attached span sink (nil when detached).
func (r *Recorder) Tracer() Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// SetTraceID attaches the request's trace identity (32 hex chars) for
// exemplar annotation on the chunk-latency histogram. Call before
// scanning starts; an empty id detaches exemplars.
func (r *Recorder) SetTraceID(id string) {
	if r == nil {
		return
	}
	r.traceID = id
}

// TraceID returns the attached trace identity ("" when detached).
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID
}

// SetProgress installs p as the live progress sink: every chunk the
// worker pool completes advances it by the chunk's input span. Call
// before scanning starts; a nil p detaches progress tracking.
func (r *Recorder) SetProgress(p *Progress) {
	if r == nil {
		return
	}
	r.progress = p
}

// Progress returns the attached progress tracker (nil when detached —
// and a nil *Progress is itself a valid no-op sink).
func (r *Recorder) Progress() *Progress {
	if r == nil {
		return nil
	}
	return r.progress
}

// Add increments counter c by n.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil || n == 0 {
		return
	}
	r.counters[c].Add(n)
}

// CounterValue returns the current value of counter c.
func (r *Recorder) CounterValue(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// AddPhaseNanos charges ns nanoseconds to phase p. Hot paths that
// cannot afford a closure use this with a pair of Now() reads.
func (r *Recorder) AddPhaseNanos(p Phase, ns int64) {
	if r == nil || ns == 0 {
		return
	}
	r.phases[p].Add(ns)
}

// PhaseNanos returns the nanoseconds accumulated against phase p.
func (r *Recorder) PhaseNanos(p Phase) int64 {
	if r == nil {
		return 0
	}
	return r.phases[p].Load()
}

// StartPhase begins timing phase p (and opens a tracer span named
// after the phase); the returned func stops the timer and charges the
// elapsed interval to p.
func (r *Recorder) StartPhase(p Phase) func() {
	if r == nil {
		return func() {}
	}
	return r.StartSpan(p, p.String())
}

// StartSpan is StartPhase with an explicit span label (for example
// "prefilter chr7"); the elapsed interval is charged to p.
func (r *Recorder) StartSpan(p Phase, label string) func() {
	if r == nil {
		return func() {}
	}
	endTrace := r.traceStart(label)
	start := Now()
	return func() {
		r.phases[p].Add(Now() - start)
		endTrace()
	}
}

// TraceSpan opens a tracer span without charging any phase — used
// where the caller accounts phase time itself (per-chromosome scan
// spans whose verify sub-intervals are subtracted out).
func (r *Recorder) TraceSpan(label string) func() {
	if r == nil {
		return func() {}
	}
	return r.traceStart(label)
}

// Traced reports whether a tracer is attached. Hot paths use it to
// skip building span labels that nobody would record.
func (r *Recorder) Traced() bool {
	return r != nil && r.tracer != nil
}

// traceStart opens a span on the attached tracer, if any.
func (r *Recorder) traceStart(label string) func() {
	if t := r.tracer; t != nil {
		return t.StartSpan(label)
	}
	return func() {}
}

// StartChunk instruments one worker-pool chunk spanning bytes input
// positions: it counts the dispatch, opens a tracer span, and — via
// the returned func — records the chunk's latency in the histogram
// sketch and advances the attached progress tracker. It charges no
// phase (the orchestrator times the enclosing scan).
func (r *Recorder) StartChunk(label string, bytes int64) func() {
	if r == nil {
		return func() {}
	}
	r.counters[CounterChunksDispatched].Add(1)
	endTrace := r.traceStart(label)
	start := Now()
	return func() {
		if lat := Now() - start; r.traceID != "" {
			r.chunkLat.ObserveTraced(lat, r.traceID)
		} else {
			r.chunkLat.Observe(lat)
		}
		r.progress.AddBytes(bytes)
		endTrace()
	}
}

// SetModeledSeconds records a one-time analytic model step (device
// configuration, synthesis), overwriting any previous value for name.
func (r *Recorder) SetModeledSeconds(name string, sec float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.modeled == nil {
		r.modeled = make(map[string]float64)
	}
	r.modeled[name] = sec
}

// AddModeledSeconds accumulates a per-scan analytic model step
// (transfer, kernel, report) across chromosomes.
func (r *Recorder) AddModeledSeconds(name string, sec float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.modeled == nil {
		r.modeled = make(map[string]float64)
	}
	r.modeled[name] += sec
}

// Snapshot returns an immutable copy of the recorder's state. It is
// safe to call while scanning continues (values are read atomically,
// per field).
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Phases: PhaseSeconds{
			Load:      secondsOf(r.phases[PhaseLoad].Load()),
			Compile:   secondsOf(r.phases[PhaseCompile].Load()),
			Prefilter: secondsOf(r.phases[PhasePrefilter].Load()),
			Verify:    secondsOf(r.phases[PhaseVerify].Load()),
			Report:    secondsOf(r.phases[PhaseReport].Load()),
		},
		Counters: CounterTotals{
			BytesScanned:     r.counters[CounterBytesScanned].Load(),
			CandidateWindows: r.counters[CounterCandidateWindows].Load(),
			PrefilterHits:    r.counters[CounterPrefilterHits].Load(),
			Verifications:    r.counters[CounterVerifications].Load(),
			SitesEmitted:     r.counters[CounterSitesEmitted].Load(),
			ChunksDispatched: r.counters[CounterChunksDispatched].Load(),
			PanicsRecovered:  r.counters[CounterPanicsRecovered].Load(),
		},
		ChunkLatency: r.chunkLat.Snapshot(),
	}
	r.mu.Lock()
	if len(r.modeled) > 0 {
		s.ModeledSec = make(map[string]float64, len(r.modeled))
		for k, v := range r.modeled {
			s.ModeledSec[k] = v
		}
	}
	r.mu.Unlock()
	return s
}

func secondsOf(ns int64) float64 { return float64(ns) / 1e9 }

// PhaseSeconds is the per-phase wall-clock breakdown of one search, in
// seconds. Phases not exercised by a pipeline (load, for in-memory
// searches) report zero.
type PhaseSeconds struct {
	// Load is input decoding time (FASTA parse + pack; streaming only).
	Load float64 `json:"load"`
	// Compile is pattern-set compilation and engine-build time.
	Compile float64 `json:"compile"`
	// Prefilter is raw engine scan time (candidate generation),
	// excluding per-event verification.
	Prefilter float64 `json:"prefilter"`
	// Verify is event-resolution time (re-verification, dedup).
	Verify float64 `json:"verify"`
	// Report is output-assembly time (sorting, yield delivery).
	Report float64 `json:"report"`
}

// Total sums every phase.
func (p PhaseSeconds) Total() float64 {
	return p.Load + p.Compile + p.Prefilter + p.Verify + p.Report
}

// CounterTotals is the counter block of a Snapshot; see the Counter
// constants for each field's exact semantics.
type CounterTotals struct {
	// BytesScanned is the reference bases streamed through the engine.
	BytesScanned int64 `json:"bytes_scanned"`
	// CandidateWindows is the window positions examined.
	CandidateWindows int64 `json:"candidate_windows"`
	// PrefilterHits is the candidates surviving the literal prefilter.
	PrefilterHits int64 `json:"prefilter_hits"`
	// Verifications is the full pattern evaluations performed.
	Verifications int64 `json:"verifications"`
	// SitesEmitted is the verified, deduplicated sites delivered.
	SitesEmitted int64 `json:"sites_emitted"`
	// ChunksDispatched is the worker-pool work units executed.
	ChunksDispatched int64 `json:"chunks_dispatched"`
	// PanicsRecovered is the worker panics isolated into errors.
	PanicsRecovered int64 `json:"panics_recovered"`
}

// Snapshot is the immutable metrics record attached to every search
// result (Stats.Metrics). All fields serialize to stable JSON for the
// benchmark trajectory.
type Snapshot struct {
	// Phases is the per-phase time breakdown in seconds.
	Phases PhaseSeconds `json:"phases_sec"`
	// Counters holds the atomic event counters' final values.
	Counters CounterTotals `json:"counters"`
	// ChunkLatency sketches the distribution of per-chunk scan latency
	// across the worker pool (zero Count when the engine never chunked).
	ChunkLatency HistogramSnapshot `json:"chunk_latency"`
	// ModeledSec holds the accelerator models' analytic device-time
	// steps in seconds (compile/transfer/kernel/report), summed across
	// chromosome scans; nil for measured engines.
	ModeledSec map[string]float64 `json:"modeled_sec,omitempty"`
}

// String renders the snapshot as a compact single-line summary for
// -stats style diagnostics.
func (s *Snapshot) String() string {
	if s == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "phases[load=%.3fs compile=%.3fs prefilter=%.3fs verify=%.3fs report=%.3fs]",
		s.Phases.Load, s.Phases.Compile, s.Phases.Prefilter, s.Phases.Verify, s.Phases.Report)
	c := s.Counters
	fmt.Fprintf(&b, " bytes=%d candidates=%d hits=%d verifs=%d sites=%d chunks=%d panics=%d",
		c.BytesScanned, c.CandidateWindows, c.PrefilterHits, c.Verifications,
		c.SitesEmitted, c.ChunksDispatched, c.PanicsRecovered)
	if s.ChunkLatency.Count > 0 {
		fmt.Fprintf(&b, " chunk_lat[p50=%.1fms p99=%.1fms max=%.1fms]",
			s.ChunkLatency.P50Sec*1e3, s.ChunkLatency.P99Sec*1e3, s.ChunkLatency.MaxSec*1e3)
	}
	for _, k := range []string{"compile", "transfer", "kernel", "report"} {
		if v, ok := s.ModeledSec[k]; ok {
			fmt.Fprintf(&b, " modeled_%s=%.4gs", k, v)
		}
	}
	return b.String()
}
