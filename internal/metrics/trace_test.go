package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// traceEvent mirrors the Chrome trace-event fields we emit.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

func TestChromeTracerEmitsValidTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	end := tr.StartSpan("compile")
	end()
	inner := tr.StartSpan(`scan "chr1"`) // name needing JSON escaping
	inner()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Name != "compile" || events[0].Ph != "X" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Name != `scan "chr1"` {
		t.Errorf("escaped name round-trip failed: %+v", events[1])
	}
	for _, ev := range events {
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("negative timestamp: %+v", ev)
		}
	}
}

func TestChromeTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				end := tr.StartSpan("chunk")
				end()
			}
		}()
	}
	wg.Wait()
	if got := tr.Events(); got != 400 {
		t.Errorf("Events() = %d, want 400", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("concurrent trace output invalid: %v", err)
	}
	if len(events) != 400 {
		t.Errorf("parsed %d events, want 400", len(events))
	}
}

func TestChromeTracerDoubleEndAndLateSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	end := tr.StartSpan("once")
	end()
	end() // double end must not duplicate the event
	late := tr.StartSpan("late")
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	late() // ended after Close: dropped, not corrupting the file
	if err := tr.Close(); err == nil {
		t.Error("second Close should report already-closed")
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace invalid after double-end/late span: %v\n%s", err, buf.String())
	}
	if len(events) != 1 || events[0].Name != "once" {
		t.Errorf("events = %+v, want exactly the 'once' span", events)
	}
}

func TestRecorderTracerIntegration(t *testing.T) {
	var buf bytes.Buffer
	tr := NewChromeTracer(&buf)
	r := NewRecorder()
	r.SetTracer(tr)
	r.StartPhase(PhaseCompile)()
	r.StartSpan(PhasePrefilter, "prefilter chr1")()
	r.TraceSpan("custom")()
	r.StartChunk("chunk 0", 64)()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range events {
		names[ev.Name] = true
	}
	for _, want := range []string{"compile", "prefilter chr1", "custom", "chunk 0"} {
		if !names[want] {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}
}
