package metrics

import "testing"

func newFlightTracer() *SpanTracer {
	return NewSpanTracer(NewTraceID(), "job", SpanID{})
}

func TestFlightRecorderTrackSealGet(t *testing.T) {
	f := NewFlightRecorder(4)
	tr := newFlightTracer()
	f.Track("j1", tr)
	if got, ok := f.Get("j1"); !ok || got != tr {
		t.Fatal("live entry not retrievable")
	}
	f.Seal("j1", false, true)
	if got, ok := f.Get("j1"); !ok || got != tr {
		t.Fatal("sealed retained entry not retrievable")
	}
	if _, ok := f.Get("missing"); ok {
		t.Fatal("unknown key reported present")
	}
	if f.Len() != 1 {
		t.Fatalf("len = %d, want 1", f.Len())
	}
}

func TestFlightRecorderDropsUnretained(t *testing.T) {
	f := NewFlightRecorder(4)
	evicted := []string{}
	f.OnEvict(func(key string) { evicted = append(evicted, key) })
	f.Track("j1", newFlightTracer())
	// The errors-only mode seals healthy jobs with retain=false.
	f.Seal("j1", false, false)
	if _, ok := f.Get("j1"); ok {
		t.Fatal("unretained entry survived its seal")
	}
	if len(evicted) != 1 || evicted[0] != "j1" {
		t.Fatalf("evict hook saw %v, want [j1]", evicted)
	}
}

func TestFlightRecorderPrefersEvictingHealthyHistory(t *testing.T) {
	f := NewFlightRecorder(3)
	var evicted []string
	f.OnEvict(func(key string) { evicted = append(evicted, key) })
	f.Track("ok1", newFlightTracer())
	f.Seal("ok1", false, true)
	f.Track("bad1", newFlightTracer())
	f.Seal("bad1", true, true)
	f.Track("ok2", newFlightTracer())
	f.Seal("ok2", false, true)
	// Over capacity: the oldest sealed healthy trace goes first, not the
	// older failed one.
	f.Track("ok3", newFlightTracer())
	f.Seal("ok3", false, true)
	if len(evicted) != 1 || evicted[0] != "ok1" {
		t.Fatalf("evicted %v, want [ok1] (oldest healthy)", evicted)
	}
	if _, ok := f.Get("bad1"); !ok {
		t.Fatal("failed trace evicted while healthy history remained")
	}
	// With only failed sealed entries left, the oldest failed one goes.
	f.Track("bad2", newFlightTracer())
	f.Seal("bad2", true, true)
	f.Track("bad3", newFlightTracer())
	f.Seal("bad3", true, true)
	f.Track("bad4", newFlightTracer())
	if _, ok := f.Get("bad1"); ok {
		t.Fatal("oldest failed trace survived once healthy history ran out")
	}
}

func TestFlightRecorderNeverEvictsLiveEntries(t *testing.T) {
	f := NewFlightRecorder(2)
	f.Track("live1", newFlightTracer())
	f.Track("live2", newFlightTracer())
	f.Track("live3", newFlightTracer())
	// All three are live: the ring transiently exceeds capacity rather
	// than dropping an in-flight trace.
	if f.Len() != 3 {
		t.Fatalf("len = %d, want 3 (live entries are never evicted)", f.Len())
	}
	f.Seal("live1", false, true)
	f.Track("live4", newFlightTracer())
	if _, ok := f.Get("live1"); ok {
		t.Fatal("sealed entry not evicted once a victim existed")
	}
	for _, k := range []string{"live2", "live3", "live4"} {
		if _, ok := f.Get(k); !ok {
			t.Fatalf("live entry %s evicted", k)
		}
	}
}

func TestFlightRecorderResumeReregisters(t *testing.T) {
	f := NewFlightRecorder(4)
	first := newFlightTracer()
	f.Track("j1", first)
	f.Seal("j1", true, true)
	// A resumed job re-tracks under the same ID with a fresh tracer; the
	// entry must be live (unsealed) again.
	second := newFlightTracer()
	f.Track("j1", second)
	if got, _ := f.Get("j1"); got != second {
		t.Fatal("resume did not replace the tracer")
	}
	// Being live again, it must not be evictable.
	f.Track("j2", newFlightTracer())
	f.Track("j3", newFlightTracer())
	f.Track("j4", newFlightTracer())
	f.Track("j5", newFlightTracer())
	if _, ok := f.Get("j1"); !ok {
		t.Fatal("re-tracked (live) entry was evicted")
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.OnEvict(func(string) {})
	f.Track("j", newFlightTracer())
	f.Seal("j", false, true)
	if _, ok := f.Get("j"); ok || f.Len() != 0 {
		t.Fatal("nil recorder not a no-op")
	}
}
