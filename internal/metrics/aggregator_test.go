package metrics

import (
	"sync"
	"testing"
)

// scanSnapshot fabricates one scan's snapshot through a real recorder,
// so merge tests exercise the same field paths production uses.
func scanSnapshot(chunks int, latNs int64) *Snapshot {
	r := NewRecorder()
	r.Add(CounterBytesScanned, 1000)
	r.Add(CounterSitesEmitted, 3)
	r.AddPhaseNanos(PhasePrefilter, 2e9)
	r.AddModeledSeconds("kernel", 0.5)
	for i := 0; i < chunks; i++ {
		r.chunkLat.Observe(latNs)
	}
	return r.Snapshot()
}

func TestAggregatorNilIsSafe(t *testing.T) {
	var a *Aggregator
	a.Observe(scanSnapshot(1, 10))
	if a.Scans() != 0 {
		t.Error("nil aggregator counted a scan")
	}
	if s := a.Snapshot(); s != nil {
		t.Errorf("nil aggregator snapshot = %+v", s)
	}
}

func TestAggregatorMergesScans(t *testing.T) {
	a := NewAggregator()
	a.Observe(scanSnapshot(4, 1000))
	a.Observe(scanSnapshot(6, 1_000_000))
	if a.Scans() != 2 {
		t.Fatalf("scans = %d, want 2", a.Scans())
	}
	s := a.Snapshot()
	if s.Counters.BytesScanned != 2000 || s.Counters.SitesEmitted != 6 {
		t.Errorf("counters = %+v", s.Counters)
	}
	if s.Phases.Prefilter != 4.0 {
		t.Errorf("prefilter sec = %v, want 4", s.Phases.Prefilter)
	}
	if s.ChunkLatency.Count != 10 {
		t.Errorf("merged hist count = %d, want 10", s.ChunkLatency.Count)
	}
	if s.ModeledSec["kernel"] != 1.0 {
		t.Errorf("modeled kernel = %v, want 1", s.ModeledSec["kernel"])
	}
	// Two distinct latency magnitudes must survive as distinct buckets.
	if len(s.ChunkLatency.Buckets) != 2 {
		t.Errorf("merged buckets = %+v, want 2 buckets", s.ChunkLatency.Buckets)
	}
	var total int64
	for _, b := range s.ChunkLatency.Buckets {
		total += b.Count
	}
	if total != s.ChunkLatency.Count {
		t.Errorf("bucket counts sum to %d, hist count %d", total, s.ChunkLatency.Count)
	}
}

func TestAggregatorMergedWithLive(t *testing.T) {
	a := NewAggregator()
	a.Observe(scanSnapshot(2, 1000))
	live := scanSnapshot(3, 1000)
	s := a.MergedWith(live, nil)
	if s.Counters.BytesScanned != 2000 {
		t.Errorf("bytes = %d, want 2000", s.Counters.BytesScanned)
	}
	if s.ChunkLatency.Count != 5 {
		t.Errorf("count = %d, want 5", s.ChunkLatency.Count)
	}
	// The merged view must not leak aggregator state: mutating it may
	// not change a later snapshot.
	s.ModeledSec["kernel"] = 99
	if got := a.Snapshot().ModeledSec["kernel"]; got != 0.5 {
		t.Errorf("aggregator state mutated through merged view: %v", got)
	}
}

func TestAggregatorConcurrentObserve(t *testing.T) {
	a := NewAggregator()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.Observe(scanSnapshot(1, 1000))
				_ = a.MergedWith()
			}
		}()
	}
	wg.Wait()
	if a.Scans() != 400 {
		t.Errorf("scans = %d, want 400", a.Scans())
	}
	if got := a.Snapshot().Counters.BytesScanned; got != 400*1000 {
		t.Errorf("bytes = %d, want 400000", got)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	var h1, h2 Histogram
	h1.Observe(100)
	h1.Observe(100)
	h2.Observe(1_000_000)
	m := h1.Snapshot().Merge(h2.Snapshot())
	if m.Count != 3 {
		t.Fatalf("count = %d", m.Count)
	}
	if m.MaxSec != secondsOf(1_000_000) {
		t.Errorf("max = %v", m.MaxSec)
	}
	wantMean := (100 + 100 + 1_000_000) / 3.0 / 1e9
	if diff := m.MeanSec - wantMean; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("mean = %v, want %v", m.MeanSec, wantMean)
	}
	// Merge with an empty side is the identity.
	empty := HistogramSnapshot{}
	if got := m.Merge(empty); got.Count != 3 {
		t.Errorf("merge with empty changed count: %+v", got)
	}
	if got := empty.Merge(m); got.Count != 3 {
		t.Errorf("empty.Merge changed count: %+v", got)
	}
}
