package metrics

import "time"

// This file is the module's only sanctioned host-clock access: the
// clockguard analyzer forbids raw time.Now/time.Since in every other
// package, so measured timing funnels through here and the analytic
// platform models provably never read a clock.

// clockBase anchors the monotonic clock; Now readings are offsets from
// process start, which keeps them small and strictly monotonic (Go
// carries the monotonic reading inside time.Time).
var clockBase = time.Now()

// Now returns the monotonic clock in nanoseconds since process start.
// It is the hot-path primitive: one clock read, no allocation.
func Now() int64 { return int64(time.Since(clockBase)) }

// Wall returns the current wall-clock time, for stamping artifacts
// (benchmark trajectories, trace files) — never for measuring.
func Wall() time.Time { return time.Now() }

// Stopwatch measures one interval on the monotonic clock.
type Stopwatch struct{ start int64 }

// NewStopwatch starts a stopwatch.
func NewStopwatch() Stopwatch { return Stopwatch{start: Now()} }

// ElapsedNanos returns nanoseconds since the stopwatch started.
func (s Stopwatch) ElapsedNanos() int64 { return Now() - s.start }

// Seconds returns seconds since the stopwatch started.
func (s Stopwatch) Seconds() float64 { return secondsOf(s.ElapsedNanos()) }

// MeasureSeconds runs fn once and returns its wall-clock seconds — the
// helper the measured engines and benchmark harnesses use.
func MeasureSeconds(fn func() error) (float64, error) {
	sw := NewStopwatch()
	err := fn()
	return sw.Seconds(), err
}
