package metrics

import "sync"

// FlightRecorder is the bounded in-memory ring of recent job traces
// behind /debug/trace/{jobID}. Entries are tracked at admission (while
// the trace is still live) and sealed at the job's terminal state;
// eviction over the capacity prefers dropping healthy history — oldest
// sealed non-failed entries first, then oldest sealed failed ones —
// and never touches a live entry, so failed and retried jobs stay
// inspectable the longest. All methods are safe for concurrent use and
// no-ops on a nil receiver.
type FlightRecorder struct {
	mu      sync.Mutex
	cap     int                     // guarded by mu
	entries map[string]*flightEntry // guarded by mu
	order   []string                // guarded by mu; insertion order, oldest first
	onEvict func(key string)        // guarded by mu (set once before use)
}

// flightEntry is one tracked trace; all fields are guarded by the
// recorder's mu.
type flightEntry struct {
	tracer *SpanTracer
	sealed bool
	failed bool
}

// defaultFlightEntries bounds the ring when the caller passes no
// capacity: enough recent history to debug a burst without letting
// trace retention grow with uptime.
const defaultFlightEntries = 64

// NewFlightRecorder returns a ring retaining up to capacity traces
// (<= 0 selects the default).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightEntries
	}
	return &FlightRecorder{cap: capacity, entries: make(map[string]*flightEntry)}
}

// OnEvict installs a callback observing evicted keys — the hook that
// deletes a job's on-disk trace file with its in-memory entry. Set it
// once, before Track is first called; the callback runs with the
// recorder locked and must not call back into it.
func (f *FlightRecorder) OnEvict(fn func(key string)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.onEvict = fn
	f.mu.Unlock()
}

// Track registers (or, on resume, re-registers) the live trace of key.
func (f *FlightRecorder) Track(key string, tr *SpanTracer) {
	if f == nil || tr == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if e, ok := f.entries[key]; ok {
		e.tracer, e.sealed, e.failed = tr, false, false
		return
	}
	f.entries[key] = &flightEntry{tracer: tr}
	f.order = append(f.order, key)
	f.evictLocked()
}

// Seal marks key's trace terminal. failed records whether the job
// failed or retried (eviction spares those longest); retain false
// drops the entry immediately (the errors-only sampling mode).
func (f *FlightRecorder) Seal(key string, failed, retain bool) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[key]
	if !ok {
		return
	}
	e.sealed, e.failed = true, failed
	if !retain {
		f.removeLocked(key)
	}
}

// Get returns the trace tracked for key, live or sealed.
func (f *FlightRecorder) Get(key string) (*SpanTracer, bool) {
	if f == nil {
		return nil, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[key]
	if !ok {
		return nil, false
	}
	return e.tracer, true
}

// Len returns the number of tracked traces.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

// evictLocked enforces the capacity: oldest sealed non-failed first,
// then oldest sealed failed. Live entries are never evicted, so the
// ring can transiently exceed capacity by the number of in-flight jobs
// (itself bounded by the service's queue and worker limits).
func (f *FlightRecorder) evictLocked() {
	for len(f.entries) > f.cap {
		victim := ""
		for _, k := range f.order {
			if e := f.entries[k]; e != nil && e.sealed && !e.failed {
				victim = k
				break
			}
		}
		if victim == "" {
			for _, k := range f.order {
				if e := f.entries[k]; e != nil && e.sealed {
					victim = k
					break
				}
			}
		}
		if victim == "" {
			return
		}
		f.removeLocked(victim)
	}
}

// removeLocked deletes key and fires the eviction hook.
func (f *FlightRecorder) removeLocked(key string) {
	if _, ok := f.entries[key]; !ok {
		return
	}
	delete(f.entries, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	if f.onEvict != nil {
		f.onEvict(key)
	}
}
