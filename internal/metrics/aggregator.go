package metrics

import "sync"

// Aggregator accumulates Snapshots across scans into one
// process-lifetime view — the backing store for the admin endpoint's
// /metrics exposition, where Prometheus expects counters to be
// monotonic across scrapes for as long as the process lives. A typical
// serving loop observes each completed scan's final snapshot; an
// in-flight scan's live recorder is merged per scrape via MergedWith.
//
// All methods are safe for concurrent use and no-ops on a nil
// receiver.
type Aggregator struct {
	mu sync.Mutex
	// scans counts completed scans observed. guarded by mu
	scans int64 // guarded by mu
	// acc is the running merged snapshot. guarded by mu
	acc Snapshot // guarded by mu
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator { return &Aggregator{} }

// Observe folds one completed scan's snapshot into the lifetime
// totals. A nil snapshot counts the scan without adding metrics.
func (a *Aggregator) Observe(s *Snapshot) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.scans++
	if s != nil {
		a.acc = mergeSnapshots(a.acc, *s)
	}
}

// Scans returns the number of completed scans observed.
func (a *Aggregator) Scans() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.scans
}

// Snapshot returns the merged lifetime snapshot.
func (a *Aggregator) Snapshot() *Snapshot {
	return a.MergedWith()
}

// MergedWith returns the lifetime snapshot with any number of live
// snapshots (in-flight scans' recorders) merged on top — the exact
// document a /metrics scrape should expose: completed plus in-flight
// work, never double-counted as long as a scan's final snapshot is
// observed only after it leaves the live set.
func (a *Aggregator) MergedWith(live ...*Snapshot) *Snapshot {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := cloneSnapshot(a.acc)
	a.mu.Unlock()
	for _, s := range live {
		if s != nil {
			out = mergeSnapshots(out, *s)
		}
	}
	return &out
}

// mergeSnapshots adds b onto a field-wise: phase seconds and counters
// sum, the chunk-latency sketches merge, modeled steps add.
func mergeSnapshots(a, b Snapshot) Snapshot {
	a.Phases.Load += b.Phases.Load
	a.Phases.Compile += b.Phases.Compile
	a.Phases.Prefilter += b.Phases.Prefilter
	a.Phases.Verify += b.Phases.Verify
	a.Phases.Report += b.Phases.Report
	a.Counters.BytesScanned += b.Counters.BytesScanned
	a.Counters.CandidateWindows += b.Counters.CandidateWindows
	a.Counters.PrefilterHits += b.Counters.PrefilterHits
	a.Counters.Verifications += b.Counters.Verifications
	a.Counters.SitesEmitted += b.Counters.SitesEmitted
	a.Counters.ChunksDispatched += b.Counters.ChunksDispatched
	a.Counters.PanicsRecovered += b.Counters.PanicsRecovered
	a.ChunkLatency = a.ChunkLatency.Merge(b.ChunkLatency)
	if len(b.ModeledSec) > 0 {
		if a.ModeledSec == nil {
			a.ModeledSec = make(map[string]float64, len(b.ModeledSec))
		}
		for k, v := range b.ModeledSec {
			a.ModeledSec[k] += v
		}
	}
	return a
}

// cloneSnapshot deep-copies the mutable parts so callers can't alias
// the aggregator's internal state.
func cloneSnapshot(s Snapshot) Snapshot {
	s.ChunkLatency.Buckets = append([]HistogramBucket(nil), s.ChunkLatency.Buckets...)
	if s.ModeledSec != nil {
		m := make(map[string]float64, len(s.ModeledSec))
		for k, v := range s.ModeledSec {
			m[k] = v
		}
		s.ModeledSec = m
	}
	return s
}
