package metrics

import (
	"sync"
	"testing"
)

func TestProgressNilIsSafe(t *testing.T) {
	var p *Progress
	p.SetTotalBytes(100)
	p.SetChromCount(2)
	p.StartChrom("chr1", 50)
	p.AddBytes(10)
	p.FinishChrom("chr1")
	p.Finish()
	if got := p.TotalBytes(); got != 0 {
		t.Errorf("nil TotalBytes = %d", got)
	}
	s := p.Snapshot()
	if s.Fraction != 0 || s.ETASec != -1 || s.Done {
		t.Errorf("nil Snapshot = %+v", s)
	}
}

func TestProgressLifecycle(t *testing.T) {
	p := NewProgress()
	p.SetTotalBytes(1000)
	p.SetChromCount(2)

	s := p.Snapshot()
	if s.Fraction != 0 || s.ScannedBytes != 0 {
		t.Fatalf("idle snapshot = %+v", s)
	}

	p.StartChrom("chr1", 600)
	p.AddBytes(300)
	s = p.Snapshot()
	if s.ScannedBytes != 300 {
		t.Errorf("mid-chrom scanned = %d, want 300", s.ScannedBytes)
	}
	if s.CurrentChrom != "chr1" {
		t.Errorf("current chrom = %q", s.CurrentChrom)
	}
	if s.Fraction <= 0 || s.Fraction >= 1 {
		t.Errorf("mid-scan fraction = %v", s.Fraction)
	}

	// Chunk advances undercount (positions, not bases); FinishChrom
	// reconciles to the authoritative chromosome length.
	p.FinishChrom("chr1")
	s = p.Snapshot()
	if s.ScannedBytes != 600 {
		t.Errorf("after chr1 scanned = %d, want 600", s.ScannedBytes)
	}
	if s.ChromsDone != 1 || s.ChromsTotal != 2 {
		t.Errorf("chrom counts = %d/%d", s.ChromsDone, s.ChromsTotal)
	}

	p.StartChrom("chr2", 400)
	// An engine advancing more positions than the chromosome holds must
	// be clamped, keeping the display monotonic through reconciliation.
	p.AddBytes(1_000_000)
	s = p.Snapshot()
	if s.ScannedBytes != 1000 {
		t.Errorf("clamped scanned = %d, want 1000", s.ScannedBytes)
	}
	if s.Fraction >= 1 {
		t.Errorf("unfinished fraction = %v, want < 1", s.Fraction)
	}

	p.FinishChrom("chr2")
	p.Finish()
	s = p.Snapshot()
	if s.Fraction != 1 || !s.Done || s.ETASec != 0 {
		t.Errorf("final snapshot = %+v", s)
	}
	if len(s.Chroms) != 2 || !s.Chroms[0].Done || !s.Chroms[1].Done {
		t.Errorf("chrom list = %+v", s.Chroms)
	}
}

func TestProgressDoubleFinishChromCountsOnce(t *testing.T) {
	p := NewProgress()
	p.SetTotalBytes(100)
	p.StartChrom("chr1", 100)
	p.FinishChrom("chr1")
	p.FinishChrom("chr1")
	if s := p.Snapshot(); s.ScannedBytes != 100 {
		t.Errorf("scanned = %d after double finish, want 100", s.ScannedBytes)
	}
}

// TestProgressMonotonicUnderConcurrency hammers the tracker from
// writer goroutines while a reader asserts the monotonicity contract
// the admin endpoint depends on.
func TestProgressMonotonicUnderConcurrency(t *testing.T) {
	p := NewProgress()
	p.SetTotalBytes(64 * 1000)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastBytes int64
		var lastFrac float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Snapshot()
			if s.ScannedBytes < lastBytes {
				t.Errorf("ScannedBytes went backwards: %d -> %d", lastBytes, s.ScannedBytes)
				return
			}
			if s.Fraction < lastFrac {
				t.Errorf("Fraction went backwards: %v -> %v", lastFrac, s.Fraction)
				return
			}
			lastBytes, lastFrac = s.ScannedBytes, s.Fraction
		}
	}()
	for c := 0; c < 8; c++ {
		name := string(rune('a' + c))
		p.StartChrom(name, 8*1000)
		var cw sync.WaitGroup
		for w := 0; w < 4; w++ {
			cw.Add(1)
			go func() {
				defer cw.Done()
				for i := 0; i < 2000; i++ {
					p.AddBytes(1)
				}
			}()
		}
		cw.Wait()
		p.FinishChrom(name)
	}
	p.Finish()
	close(stop)
	wg.Wait()
	if s := p.Snapshot(); s.Fraction != 1 || s.ScannedBytes != 64*1000 {
		t.Errorf("final = %+v", s)
	}
}

func TestProgressThroughputAndETA(t *testing.T) {
	p := NewProgress()
	p.SetTotalBytes(1 << 30)
	p.StartChrom("chr1", 1<<30)
	for i := 0; i < 50; i++ {
		p.AddBytes(1 << 16)
	}
	s := p.Snapshot()
	if s.ThroughputBPS <= 0 {
		t.Errorf("throughput = %v, want > 0", s.ThroughputBPS)
	}
	if s.ETASec < 0 {
		t.Errorf("ETA = %v, want finite", s.ETASec)
	}
	if s.ElapsedSec < 0 {
		t.Errorf("elapsed = %v", s.ElapsedSec)
	}
}
