package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Tracer observes instrumented spans. Implementations must be safe for
// concurrent use: spans open and close from orchestrator and worker
// goroutines alike, and may nest and overlap freely.
type Tracer interface {
	// StartSpan begins a named span and returns the func that ends it.
	// The returned func must be called exactly once.
	StartSpan(name string) func()
}

// ChromeTracer renders spans in the Chrome trace-event JSON format
// (catapult "JSON Array" flavor), loadable in chrome://tracing,
// Perfetto, or speedscope — so any scan can be flame-graphed. Create
// with NewChromeTracer, attach via Recorder.SetTracer, and Close after
// the scan to finalize the array.
type ChromeTracer struct {
	mu     sync.Mutex
	w      io.Writer // guarded by mu
	events int       // guarded by mu
	err    error     // guarded by mu

	// open approximates the number of concurrently open spans; it
	// assigns each span a lane ("tid") so overlapping worker chunks
	// render side by side instead of stacking into nonsense.
	open atomic.Int64
	base int64
}

// NewChromeTracer starts a trace written to w.
func NewChromeTracer(w io.Writer) *ChromeTracer {
	t := &ChromeTracer{w: w, base: Now()}
	t.mu.Lock()
	_, t.err = io.WriteString(w, "[")
	t.mu.Unlock()
	return t
}

// StartSpan implements Tracer. The span is emitted as one complete
// ("X") event when the returned func runs.
func (t *ChromeTracer) StartSpan(name string) func() {
	lane := t.open.Add(1)
	start := Now() - t.base
	var once sync.Once
	return func() {
		once.Do(func() {
			dur := Now() - t.base - start
			t.open.Add(-1)
			t.emit(name, lane, start, dur)
		})
	}
}

// emit appends one complete event. Timestamps are microseconds, per
// the trace-event spec.
func (t *ChromeTracer) emit(name string, lane, startNs, durNs int64) {
	nameJSON, err := json.Marshal(name)
	if err != nil {
		nameJSON = []byte(`"span"`)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	sep := ","
	if t.events == 0 {
		sep = ""
	}
	_, t.err = fmt.Fprintf(t.w, "%s\n{\"name\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
		sep, nameJSON, lane, float64(startNs)/1e3, float64(durNs)/1e3)
	if t.err == nil {
		t.events++
	}
}

// Close finalizes the JSON array and returns the first write error
// encountered, if any. Spans ended after Close are dropped.
func (t *ChromeTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	_, t.err = io.WriteString(t.w, "\n]\n")
	if t.err != nil {
		return t.err
	}
	t.err = fmt.Errorf("metrics: trace already closed")
	return nil
}

// Events returns the number of span events written so far.
func (t *ChromeTracer) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}
