package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	// Every method must be a safe no-op on nil.
	r.Add(CounterBytesScanned, 5)
	r.AddPhaseNanos(PhasePrefilter, 10)
	r.SetTracer(nil)
	r.SetModeledSeconds("kernel", 1)
	r.AddModeledSeconds("kernel", 1)
	r.StartPhase(PhaseCompile)()
	r.StartSpan(PhasePrefilter, "x")()
	r.TraceSpan("x")()
	r.StartChunk("x", 1)()
	r.SetProgress(nil)
	if got := r.PhaseNanos(PhaseCompile); got != 0 {
		t.Errorf("nil recorder PhaseNanos = %d", got)
	}
	if got := r.CounterValue(CounterBytesScanned); got != 0 {
		t.Errorf("nil recorder CounterValue = %d", got)
	}
	if s := r.Snapshot(); s != nil {
		t.Errorf("nil recorder Snapshot = %+v, want nil", s)
	}
}

func TestRecorderCountersAndPhases(t *testing.T) {
	r := NewRecorder()
	r.Add(CounterBytesScanned, 100)
	r.Add(CounterBytesScanned, 23)
	r.Add(CounterSitesEmitted, 7)
	r.AddPhaseNanos(PhaseVerify, 2_000_000_000)
	stop := r.StartPhase(PhaseCompile)
	stop()
	s := r.Snapshot()
	if s.Counters.BytesScanned != 123 {
		t.Errorf("BytesScanned = %d, want 123", s.Counters.BytesScanned)
	}
	if s.Counters.SitesEmitted != 7 {
		t.Errorf("SitesEmitted = %d, want 7", s.Counters.SitesEmitted)
	}
	if s.Phases.Verify != 2.0 {
		t.Errorf("Verify = %v, want 2.0", s.Phases.Verify)
	}
	if s.Phases.Compile < 0 {
		t.Errorf("Compile = %v, want >= 0", s.Phases.Compile)
	}
	if got := s.Phases.Total(); got < 2.0 {
		t.Errorf("Total = %v, want >= 2.0", got)
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(CounterCandidateWindows, 2)
				r.AddPhaseNanos(PhasePrefilter, 3)
				end := r.StartChunk("chunk", 64)
				end()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters.CandidateWindows != 16000 {
		t.Errorf("CandidateWindows = %d, want 16000", s.Counters.CandidateWindows)
	}
	if s.Phases.Prefilter != 24000e-9 {
		t.Errorf("Prefilter = %v, want 24000ns", s.Phases.Prefilter)
	}
	if s.Counters.ChunksDispatched != 8000 || s.ChunkLatency.Count != 8000 {
		t.Errorf("chunks=%d latency count=%d, want 8000/8000",
			s.Counters.ChunksDispatched, s.ChunkLatency.Count)
	}
}

func TestModeledSeconds(t *testing.T) {
	r := NewRecorder()
	r.SetModeledSeconds("compile", 45)
	r.SetModeledSeconds("compile", 45) // idempotent overwrite
	r.AddModeledSeconds("kernel", 0.5)
	r.AddModeledSeconds("kernel", 0.25)
	s := r.Snapshot()
	if s.ModeledSec["compile"] != 45 {
		t.Errorf("modeled compile = %v, want 45", s.ModeledSec["compile"])
	}
	if s.ModeledSec["kernel"] != 0.75 {
		t.Errorf("modeled kernel = %v, want 0.75", s.ModeledSec["kernel"])
	}
	// The snapshot must be a copy, not an aliased map.
	r.AddModeledSeconds("kernel", 1)
	if s.ModeledSec["kernel"] != 0.75 {
		t.Errorf("snapshot aliased the live modeled map")
	}
}

func TestPhaseAndCounterNames(t *testing.T) {
	wantPhases := []string{"load", "compile", "prefilter", "verify", "report"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != wantPhases[p] {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), wantPhases[p])
		}
	}
	wantCounters := []string{
		"bytes_scanned", "candidate_windows", "prefilter_hits", "verifications",
		"sites_emitted", "chunks_dispatched", "panics_recovered",
	}
	for c := Counter(0); c < NumCounters; c++ {
		if c.String() != wantCounters[c] {
			t.Errorf("Counter(%d).String() = %q, want %q", c, c.String(), wantCounters[c])
		}
	}
	if !strings.Contains(Phase(99).String(), "99") || !strings.Contains(Counter(99).String(), "99") {
		t.Error("out-of-range enum String() should embed the raw value")
	}
}

func TestSnapshotString(t *testing.T) {
	r := NewRecorder()
	r.Add(CounterBytesScanned, 42)
	r.AddModeledSeconds("kernel", 0.5)
	got := r.Snapshot().String()
	for _, want := range []string{"bytes=42", "phases[", "modeled_kernel"} {
		if !strings.Contains(got, want) {
			t.Errorf("Snapshot.String() = %q, missing %q", got, want)
		}
	}
	var nilSnap *Snapshot
	if nilSnap.String() != "<nil>" {
		t.Errorf("nil Snapshot.String() = %q", nilSnap.String())
	}
}

func TestStopwatchAndMeasure(t *testing.T) {
	sw := NewStopwatch()
	if sw.ElapsedNanos() < 0 {
		t.Error("stopwatch went backwards")
	}
	sec, err := MeasureSeconds(func() error { return nil })
	if err != nil || sec < 0 {
		t.Errorf("MeasureSeconds = %v, %v", sec, err)
	}
	if Now() < 0 {
		t.Error("Now() negative")
	}
	if Wall().IsZero() {
		t.Error("Wall() zero")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.MeanSec != 0 {
		t.Errorf("empty histogram snapshot = %+v", s)
	}
	// 100 observations at ~1ms, one outlier at ~1s.
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000)
	}
	h.Observe(1_000_000_000)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Errorf("Count = %d, want 101", s.Count)
	}
	if s.MaxSec != 1.0 {
		t.Errorf("MaxSec = %v, want 1.0", s.MaxSec)
	}
	// p50 must land in the ~1ms bucket (2x relative error bound).
	if s.P50Sec < 0.5e-3 || s.P50Sec > 2e-3 {
		t.Errorf("P50Sec = %v, want ~1ms", s.P50Sec)
	}
	// p99 rank (99th of 101) is still within the 1ms observations.
	if s.P99Sec > 2e-3 {
		t.Errorf("P99Sec = %v, want ~1ms", s.P99Sec)
	}
	if s.MeanSec < 1e-3 || s.MeanSec > 20e-3 {
		t.Errorf("MeanSec = %v", s.MeanSec)
	}
	h.Observe(-5) // clamps, does not panic
	if got := h.Snapshot().Count; got != 102 {
		t.Errorf("Count after clamp = %d, want 102", got)
	}
}
