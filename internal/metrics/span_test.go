package metrics

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	for _, sampled := range []bool{true, false} {
		h := FormatTraceparent(tid, sid, sampled)
		gotT, gotS, gotF, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q): %v", h, err)
		}
		if gotT != tid || gotS != sid || gotF != sampled {
			t.Fatalf("round trip of %q: got (%s, %s, %v), want (%s, %s, %v)",
				h, gotT, gotS, gotF, tid, sid, sampled)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"whitespace", "   "},
		{"garbage", "not-a-traceparent"},
		{"three fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7"},
		{"version ff", strings.Replace(valid, "00-", "ff-", 1)},
		{"version not hex", strings.Replace(valid, "00-", "zz-", 1)},
		{"version one char", strings.Replace(valid, "00-", "0-", 1)},
		{"version 00 extra field", valid + "-deadbeef"},
		{"short trace id", "00-4bf92f3577b34da6-00f067aa0ba902b7-01"},
		{"short parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa-01"},
		{"long flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0101"},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01"},
		{"non-hex parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902zz-01"},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"all-zero parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
	}
	for _, tc := range cases {
		if _, _, _, err := ParseTraceparent(tc.in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted malformed input", tc.name, tc.in)
		}
	}
	// A future version may carry extra fields; the known prefix parses.
	future := strings.Replace(valid, "00-", "cc-", 1) + "-extra-fields"
	if _, _, sampled, err := ParseTraceparent(future); err != nil || !sampled {
		t.Errorf("future-version traceparent %q: err=%v sampled=%v, want accepted and sampled", future, err, sampled)
	}
	// Surrounding whitespace is trimmed, as proxies sometimes pad.
	if _, _, _, err := ParseTraceparent("  " + valid + "  "); err != nil {
		t.Errorf("padded traceparent rejected: %v", err)
	}
}

func TestSpanTreeHierarchy(t *testing.T) {
	tid := NewTraceID()
	inbound := NewSpanID()
	tr := NewSpanTracer(tid, "job", inbound)
	tr.Root().SetAttr("tenant", "acme")
	tr.Root().SetAttr("tenant", "acme2") // repeated key: last write wins
	tr.Root().Eventf("submitted %d", 1)

	_, endQ := tr.Root().StartChild("queue-wait")
	endQ()
	attempt, endA := tr.Root().StartChild("attempt 1")
	tr.SetAmbient(attempt)
	// Seam spans (Tracer interface path) land under the ambient span.
	endChunk := tr.StartSpan("chunk 0")
	endChunk()
	_, endC := tr.StartChild("chunk 1")
	endC()
	endA()
	tr.SetAmbient(nil)
	tr.Root().End()

	tree := tr.Tree()
	if tree.TraceID != tid.String() {
		t.Fatalf("tree trace id %q, want %q", tree.TraceID, tid.String())
	}
	root := tree.Root
	if root.Name != "job" || root.ParentID != inbound.String() {
		t.Fatalf("root = %q parent %q, want job under inbound %q", root.Name, root.ParentID, inbound.String())
	}
	if root.Open {
		t.Fatal("ended root still marked open")
	}
	if root.Attrs["tenant"] != "acme2" {
		t.Fatalf("root attrs %v: repeated key did not take the last write", root.Attrs)
	}
	if len(root.Events) != 1 || root.Events[0].Msg != "submitted 1" {
		t.Fatalf("root events %v, want one 'submitted 1'", root.Events)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children %v, want queue-wait and attempt 1", len(root.Children), childNames(root))
	}
	if root.Children[0].Name != "queue-wait" || root.Children[1].Name != "attempt 1" {
		t.Fatalf("root children %v not in start order", childNames(root))
	}
	att := root.Children[1]
	if len(att.Children) != 2 || att.Children[0].Name != "chunk 0" || att.Children[1].Name != "chunk 1" {
		t.Fatalf("attempt children %v, want ambient-parented chunks", childNames(att))
	}
	if att.Children[0].SpanID == "" || att.Children[0].ParentID != att.SpanID {
		t.Fatal("chunk span ids do not link to the attempt")
	}
}

func childNames(n *SpanNode) []string {
	out := make([]string, len(n.Children))
	for i, c := range n.Children {
		out[i] = c.Name
	}
	return out
}

func TestSpanBudgetBoundsMemory(t *testing.T) {
	tr := NewSpanTracer(NewTraceID(), "job", SpanID{})
	tr.SetMaxSpans(4)
	for i := 0; i < 10; i++ {
		sp, end := tr.Root().StartChild("c")
		end()
		if i >= 3 && sp != nil {
			t.Fatalf("span %d admitted over the budget", i)
		}
	}
	if d := tr.Dropped(); d != 7 {
		t.Fatalf("dropped = %d, want 7 (10 children, budget 4 incl. root)", d)
	}
	tree := tr.Tree()
	if tree.DroppedSpans != 7 || len(tree.Root.Children) != 3 {
		t.Fatalf("tree dropped=%d children=%d, want 7 and 3", tree.DroppedSpans, len(tree.Root.Children))
	}
}

func TestOpenSpansRenderAsOpen(t *testing.T) {
	tr := NewSpanTracer(NewTraceID(), "job", SpanID{})
	_, _ = tr.Root().StartChild("in-flight") // deliberately never ended
	tree := tr.Tree()
	if !tree.Root.Open {
		t.Fatal("un-ended root not marked open")
	}
	if len(tree.Root.Children) != 1 || !tree.Root.Children[0].Open {
		t.Fatal("in-flight child not marked open")
	}
	if tree.Root.Children[0].DurNs < 0 {
		t.Fatal("open span has negative duration")
	}
}

func TestTraceSamplerModes(t *testing.T) {
	id := NewTraceID()
	always := TraceSampler{}
	if !always.Record("a", id) || !always.Retain(false) || !always.Retain(true) {
		t.Fatal("default (always) sampler must record and retain everything")
	}
	errs := TraceSampler{Mode: SampleErrors}
	if !errs.Record("a", id) {
		t.Fatal("errors mode must record every job (retention filters later)")
	}
	if errs.Retain(false) || !errs.Retain(true) {
		t.Fatal("errors mode must retain failed jobs only")
	}
	zero := TraceSampler{Mode: SampleRatio, Ratio: 0}
	one := TraceSampler{Mode: SampleRatio, Ratio: 1}
	for i := 0; i < 32; i++ {
		rid := NewTraceID()
		if zero.Record("a", rid) {
			t.Fatal("ratio 0 recorded a trace")
		}
		if !one.Record("a", rid) {
			t.Fatal("ratio 1 skipped a trace")
		}
	}
	// The ratio decision is a pure function of the trace ID, so every
	// service hop samples the same subset.
	half := TraceSampler{Mode: SampleRatio, Ratio: 0.5}
	picked := 0
	for i := 0; i < 256; i++ {
		rid := NewTraceID()
		first := half.Record("a", rid)
		if half.Record("b", rid) != first {
			t.Fatal("ratio decision depends on something other than the trace ID")
		}
		if first {
			picked++
		}
	}
	if picked == 0 || picked == 256 {
		t.Fatalf("ratio 0.5 picked %d/256 traces; decision looks degenerate", picked)
	}
	tenant := TraceSampler{Mode: SampleRatio, Ratio: 0, TenantRatio: map[string]float64{"vip": 1}}
	if tenant.Record("other", id) || !tenant.Record("vip", id) {
		t.Fatal("per-tenant ratio override not applied")
	}
}

func TestWriteChromeIsValidTraceEventJSON(t *testing.T) {
	tr := NewSpanTracer(NewTraceID(), "job", SpanID{})
	_, end := tr.Root().StartChild("attempt 1")
	end()
	tr.Root().SetAttr("state", "done")
	tr.Root().End()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		TID  int               `json:"tid"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		Args map[string]string `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("chrome export has %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete-event X", ev.Name, ev.Ph)
		}
		if ev.Args["trace_id"] != tr.TraceID().String() || ev.Args["span_id"] == "" {
			t.Fatalf("event %q lacks trace/span identity args: %v", ev.Name, ev.Args)
		}
		if ev.TID < 1 {
			t.Fatalf("event %q has lane %d, want >= 1", ev.Name, ev.TID)
		}
	}
	if events[0].Args["state"] != "done" {
		t.Fatalf("root attrs not exported as args: %v", events[0].Args)
	}

	// The nil tracer still writes a syntactically valid (empty) export.
	buf.Reset()
	var nilTr *SpanTracer
	if err := nilTr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var empty []any
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("nil-tracer export %q: err=%v", buf.String(), err)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var tr *SpanTracer
	var sp *Span
	tr.SetMaxSpans(8)
	tr.SetAmbient(nil)
	if got := tr.TraceID(); !got.IsZero() {
		t.Fatal("nil tracer returned a trace id")
	}
	if tr.Root() != nil || tr.Dropped() != 0 || tr.Tree() != nil {
		t.Fatal("nil tracer accessors not zero")
	}
	tr.StartSpan("x")()
	_, end := tr.StartChild("x")
	end()
	_, end = sp.StartChild("x")
	end()
	sp.End()
	sp.SetAttr("k", "v")
	sp.Eventf("e")
	if sp.ID() != (SpanID{}) {
		t.Fatal("nil span returned an id")
	}
}

func TestContextCarriesSpan(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context produced a span")
	}
	tr := NewSpanTracer(NewTraceID(), "job", SpanID{})
	ctx := ContextWithSpan(context.Background(), tr.Root())
	if SpanFromContext(ctx) != tr.Root() {
		t.Fatal("context did not round-trip the span")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewSpanTracer(NewTraceID(), "job", SpanID{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp, end := tr.StartChild("chunk")
				sp.SetAttr("k", "v")
				sp.Eventf("tick")
				end()
			}
		}()
	}
	// Concurrent readers must see consistent snapshots.
	for i := 0; i < 10; i++ {
		_ = tr.Tree()
		_ = tr.WriteChrome(&bytes.Buffer{})
	}
	wg.Wait()
	tree := tr.Tree()
	if got := len(tree.Root.Children); got != 400 {
		t.Fatalf("tree has %d chunk spans, want 400", got)
	}
}

func TestHistogramExemplars(t *testing.T) {
	var h Histogram
	h.Observe(1000) // untraced: no exemplar
	h.ObserveTraced(1000, "aaaa")
	h.ObserveTraced(1010, "bbbb") // same log2 bucket as aaaa: most recent wins
	h.ObserveTraced(1<<20, "cccc")
	snap := h.Snapshot()
	byTrace := map[string]int64{}
	for _, b := range snap.Buckets {
		if b.Exemplar != nil {
			byTrace[b.Exemplar.TraceID] = b.Exemplar.ValueNs
		}
	}
	if len(byTrace) != 2 {
		t.Fatalf("exemplars %v, want exactly the bbbb and cccc buckets", byTrace)
	}
	if byTrace["bbbb"] != 1010 || byTrace["cccc"] != 1<<20 {
		t.Fatalf("exemplars %v: wrong survivors", byTrace)
	}

	// Merge keeps the larger-valued exemplar per bucket.
	var h2 Histogram
	h2.ObserveTraced(600, "dddd") // same bucket as bbbb, smaller value
	merged := snap.Merge(h2.Snapshot())
	found := false
	for _, b := range merged.Buckets {
		if b.Exemplar != nil && b.Exemplar.TraceID == "bbbb" {
			found = true
		}
		if b.Exemplar != nil && b.Exemplar.TraceID == "dddd" {
			t.Fatal("merge preferred the smaller exemplar")
		}
	}
	if !found {
		t.Fatal("merge lost the surviving exemplar")
	}
}

func TestRecorderChunkExemplars(t *testing.T) {
	var rec Recorder
	rec.SetTraceID("feedface")
	end := rec.StartChunk("chr1", 1024)
	end()
	snap := rec.Snapshot()
	var got *Exemplar
	for _, b := range snap.ChunkLatency.Buckets {
		if b.Exemplar != nil {
			got = b.Exemplar
		}
	}
	if got == nil || got.TraceID != "feedface" {
		t.Fatalf("chunk-latency exemplar %+v, want trace feedface attached", got)
	}

	// Without a trace ID the untraced path must leave no exemplars.
	var plain Recorder
	plain.StartChunk("chr1", 1024)()
	for _, b := range plain.Snapshot().ChunkLatency.Buckets {
		if b.Exemplar != nil {
			t.Fatal("untraced recorder produced an exemplar")
		}
	}
}
