package metrics

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log2-bucketed latency sketch: bucket i
// counts observations with nanosecond value in [2^i, 2^(i+1)). The
// geometric buckets bound relative quantile error at 2x, which is
// plenty for spotting chunk-latency outliers, while keeping Observe to
// two atomic adds plus a bit scan.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [64]atomic.Int64
}

// Observe records one latency of ns nanoseconds (negative values are
// clamped to zero).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// Snapshot renders the sketch into an immutable summary.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [64]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, MaxSec: secondsOf(h.maxNs.Load())}
	if total == 0 {
		return s
	}
	s.MeanSec = secondsOf(h.sumNs.Load()) / float64(total)
	s.P50Sec = quantile(counts[:], total, 0.50)
	s.P90Sec = quantile(counts[:], total, 0.90)
	s.P99Sec = quantile(counts[:], total, 0.99)
	return s
}

// quantile returns the geometric midpoint of the bucket holding the
// q-quantile observation.
func quantile(counts []int64, total int64, q float64) float64 {
	rank := int64(q * float64(total-1))
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if seen > rank {
			// Bucket i spans [2^(i-1), 2^i) ns (bucket 0 is exactly 0);
			// report the geometric midpoint.
			if i == 0 {
				return 0
			}
			lo := int64(1) << uint(i-1)
			return secondsOf(lo + lo/2)
		}
	}
	return 0
}

// HistogramSnapshot summarizes a latency distribution in seconds.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// MeanSec is the arithmetic mean latency.
	MeanSec float64 `json:"mean_sec"`
	// P50Sec, P90Sec and P99Sec are quantile estimates (log2 buckets:
	// at most 2x relative error).
	P50Sec float64 `json:"p50_sec"`
	P90Sec float64 `json:"p90_sec"`
	P99Sec float64 `json:"p99_sec"`
	// MaxSec is the exact maximum observed latency.
	MaxSec float64 `json:"max_sec"`
}
