package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a lock-free log2-bucketed latency sketch: bucket i
// counts observations with nanosecond value in [2^i, 2^(i+1)). The
// geometric buckets bound relative quantile error at 2x, which is
// plenty for spotting chunk-latency outliers, while keeping Observe to
// two atomic adds plus a bit scan.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [64]atomic.Int64

	// exemplars holds, per bucket, the most recent traced observation —
	// the link from a slow bucket to a concrete trace ID. Only
	// ObserveTraced populates them; the untraced Observe path never
	// touches the array.
	exemplars [64]atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to a concrete trace: the last
// traced observation that landed in the bucket.
type Exemplar struct {
	// TraceID is the 32-hex-char trace identity of the observation.
	TraceID string `json:"trace_id"`
	// ValueNs is the observed latency in nanoseconds.
	ValueNs int64 `json:"value_ns"`
}

// Observe records one latency of ns nanoseconds (negative values are
// clamped to zero).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// ObserveTraced is Observe plus an exemplar: the bucket remembers this
// observation's trace ID, so a latency outlier in /metrics or a
// snapshot links straight to its /debug/trace entry.
func (h *Histogram) ObserveTraced(ns int64, traceID string) {
	if ns < 0 {
		ns = 0
	}
	h.Observe(ns)
	if traceID == "" {
		return
	}
	h.exemplars[bits.Len64(uint64(ns))].Store(&Exemplar{TraceID: traceID, ValueNs: ns})
}

// Snapshot renders the sketch into an immutable summary, including the
// non-zero log2 buckets (so downstream consumers — the Prometheus
// histogram exposition, /debug/scans — can render real distributions,
// not just the quantile summaries).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [64]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, MaxSec: secondsOf(h.maxNs.Load())}
	if total == 0 {
		return s
	}
	s.MeanSec = secondsOf(h.sumNs.Load()) / float64(total)
	s.P50Sec = quantile(counts[:], total, 0.50)
	s.P90Sec = quantile(counts[:], total, 0.90)
	s.P99Sec = quantile(counts[:], total, 0.99)
	for i, c := range counts {
		if c != 0 {
			b := HistogramBucket{UpperNs: bucketUpperNs(i), Count: c}
			if ex := h.exemplars[i].Load(); ex != nil {
				cp := *ex
				b.Exemplar = &cp
			}
			s.Buckets = append(s.Buckets, b)
		}
	}
	return s
}

// bucketUpperNs returns bucket i's exclusive upper bound in
// nanoseconds. Bucket 0 holds exactly the value 0; bucket i (i>0)
// spans [2^(i-1), 2^i). The top bucket's bound saturates at MaxInt64.
func bucketUpperNs(i int) int64 {
	if i == 0 {
		return 1
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1 << uint(i)
}

// quantile returns the geometric midpoint of the bucket holding the
// q-quantile observation.
func quantile(counts []int64, total int64, q float64) float64 {
	rank := int64(q * float64(total-1))
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if seen > rank {
			// Bucket i spans [2^(i-1), 2^i) ns (bucket 0 is exactly 0);
			// report the geometric midpoint.
			if i == 0 {
				return 0
			}
			lo := int64(1) << uint(i-1)
			return secondsOf(lo + lo/2)
		}
	}
	return 0
}

// HistogramSnapshot summarizes a latency distribution in seconds.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// MeanSec is the arithmetic mean latency.
	MeanSec float64 `json:"mean_sec"`
	// P50Sec, P90Sec and P99Sec are quantile estimates (log2 buckets:
	// at most 2x relative error).
	P50Sec float64 `json:"p50_sec"`
	P90Sec float64 `json:"p90_sec"`
	P99Sec float64 `json:"p99_sec"`
	// MaxSec is the exact maximum observed latency.
	MaxSec float64 `json:"max_sec"`
	// Buckets lists the non-zero log2 buckets in ascending bound order:
	// the full distribution behind the quantile summaries. Omitted when
	// no observations were recorded.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one non-zero log2 bucket of a latency sketch.
type HistogramBucket struct {
	// UpperNs is the bucket's exclusive upper bound in nanoseconds:
	// bucket [UpperNs/2, UpperNs), except the zero bucket (UpperNs 1,
	// holding exact-zero observations) and the saturated top bucket
	// (UpperNs MaxInt64).
	UpperNs int64 `json:"upper_ns"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
	// Exemplar, when present, links the bucket to the trace of a recent
	// observation that landed in it.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Merge folds another snapshot into s: counts and bucket populations
// add, the mean is count-weighted, the max takes the larger side, and
// the quantiles are re-estimated from the merged buckets. The
// process-lifetime Aggregator uses it to combine per-scan sketches.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if o.Count == 0 {
		return s
	}
	if s.Count == 0 {
		return o
	}
	var counts [64]int64
	var exes [64]*Exemplar
	addBuckets(&counts, &exes, s.Buckets)
	addBuckets(&counts, &exes, o.Buckets)
	m := HistogramSnapshot{Count: s.Count + o.Count, MaxSec: math.Max(s.MaxSec, o.MaxSec)}
	m.MeanSec = (s.MeanSec*float64(s.Count) + o.MeanSec*float64(o.Count)) / float64(m.Count)
	m.P50Sec = quantile(counts[:], m.Count, 0.50)
	m.P90Sec = quantile(counts[:], m.Count, 0.90)
	m.P99Sec = quantile(counts[:], m.Count, 0.99)
	for i, c := range counts {
		if c != 0 {
			m.Buckets = append(m.Buckets, HistogramBucket{UpperNs: bucketUpperNs(i), Count: c, Exemplar: exes[i]})
		}
	}
	return m
}

// addBuckets scatters snapshot buckets back onto the 64-slot log2
// grid, keeping per bucket the exemplar with the largest observed
// value (the most interesting trace to chase).
func addBuckets(counts *[64]int64, exes *[64]*Exemplar, bs []HistogramBucket) {
	for _, b := range bs {
		i := bucketIndex(b.UpperNs)
		counts[i] += b.Count
		if b.Exemplar != nil && (exes[i] == nil || b.Exemplar.ValueNs >= exes[i].ValueNs) {
			exes[i] = b.Exemplar
		}
	}
}

// bucketIndex inverts bucketUpperNs.
func bucketIndex(upperNs int64) int {
	if upperNs <= 1 {
		return 0
	}
	if upperNs == math.MaxInt64 {
		return 63
	}
	return bits.Len64(uint64(upperNs)) - 1
}
