package metrics

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the hierarchical half of the tracing subsystem: W3C
// trace-context identities, a SpanTracer that records parent-child span
// trees behind the same Tracer seam the flat ChromeTracer uses (so
// engines need no signature changes), and the sampling policy that
// decides which jobs record and which traces the flight recorder
// retains. The nil-receiver convention of the rest of the package
// applies throughout: a nil *SpanTracer or nil *Span is a valid no-op.

// TraceID is a 128-bit trace identity, rendered as 32 lowercase hex
// characters per the W3C trace-context spec.
type TraceID [16]byte

// SpanID is a 64-bit span identity, rendered as 16 lowercase hex
// characters per the W3C trace-context spec.
type SpanID [8]byte

// String returns the 32-hex-char form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the all-zero (invalid) identity.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 16-hex-char form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the all-zero (invalid) identity.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// idFallback de-duplicates IDs if the system entropy source ever
// fails: a counter mixed with the monotonic clock keeps IDs unique
// within the process, which is all the tracer needs.
var idFallback atomic.Uint64

func fillRandomID(b []byte) {
	if _, err := rand.Read(b); err == nil {
		for _, c := range b {
			if c != 0 {
				return
			}
		}
	}
	v := idFallback.Add(1) ^ uint64(Now())
	for i := range b {
		b[i] = byte(v >> (8 * uint(i%8)))
	}
	b[0] |= 1 // never all-zero
}

// NewTraceID returns a fresh random (non-zero) trace identity.
func NewTraceID() TraceID {
	var id TraceID
	fillRandomID(id[:])
	return id
}

// NewSpanID returns a fresh random (non-zero) span identity.
func NewSpanID() SpanID {
	var id SpanID
	fillRandomID(id[:])
	return id
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace>-<16 hex span>-<2 hex flags>"). It returns the
// trace identity, the caller's span identity, and the sampled flag.
// Malformed input returns an error; callers are expected to degrade to
// a fresh root trace, never to reject the request.
func ParseTraceparent(s string) (TraceID, SpanID, bool, error) {
	var tid TraceID
	var sid SpanID
	s = strings.TrimSpace(s)
	if s == "" {
		return tid, sid, false, fmt.Errorf("metrics: empty traceparent")
	}
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return tid, sid, false, fmt.Errorf("metrics: traceparent needs 4 fields, got %d", len(parts))
	}
	ver := parts[0]
	if len(ver) != 2 || !isHex(ver) {
		return tid, sid, false, fmt.Errorf("metrics: traceparent version %q is not 2 hex chars", ver)
	}
	if ver == "ff" {
		return tid, sid, false, fmt.Errorf("metrics: traceparent version ff is forbidden")
	}
	if ver == "00" && len(parts) != 4 {
		return tid, sid, false, fmt.Errorf("metrics: version-00 traceparent must have exactly 4 fields")
	}
	if len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return tid, sid, false, fmt.Errorf("metrics: traceparent field lengths %d-%d-%d, want 32-16-2",
			len(parts[1]), len(parts[2]), len(parts[3]))
	}
	// The W3C spec requires lowercase hex; hex.Decode would accept
	// uppercase, so screen each field first.
	if !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return tid, sid, false, fmt.Errorf("metrics: traceparent fields must be lowercase hex")
	}
	if _, err := hex.Decode(tid[:], []byte(parts[1])); err != nil {
		return TraceID{}, sid, false, fmt.Errorf("metrics: traceparent trace-id: %w", err)
	}
	if _, err := hex.Decode(sid[:], []byte(parts[2])); err != nil {
		return TraceID{}, SpanID{}, false, fmt.Errorf("metrics: traceparent parent-id: %w", err)
	}
	flags, err := hex.DecodeString(parts[3])
	if err != nil {
		return TraceID{}, SpanID{}, false, fmt.Errorf("metrics: traceparent flags: %w", err)
	}
	if tid.IsZero() {
		return TraceID{}, SpanID{}, false, fmt.Errorf("metrics: traceparent trace-id is all zero")
	}
	if sid.IsZero() {
		return TraceID{}, SpanID{}, false, fmt.Errorf("metrics: traceparent parent-id is all zero")
	}
	return tid, sid, flags[0]&0x01 != 0, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// FormatTraceparent renders the version-00 traceparent header for tid
// with sid as the parent span.
func FormatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tid.String() + "-" + sid.String() + "-" + flags
}

// Sampling modes for TraceSampler.Mode.
const (
	// SampleAlways records and retains every job's trace.
	SampleAlways = "always"
	// SampleRatio records a deterministic per-tenant fraction of traces
	// (the decision depends only on the trace ID, so every hop in a
	// distributed call samples the same traces).
	SampleRatio = "ratio"
	// SampleErrors records every job but retains only failed or retried
	// ones in the flight recorder.
	SampleErrors = "errors"
)

// TraceSampler is the sampling policy: Record decides at admission
// whether a job's spans are recorded at all; Retain decides at the
// terminal state whether the flight recorder keeps the trace.
type TraceSampler struct {
	// Mode is one of SampleAlways (the default, also for ""),
	// SampleRatio, or SampleErrors.
	Mode string
	// Ratio is the default sampling probability in ratio mode.
	Ratio float64
	// TenantRatio overrides Ratio for specific tenants in ratio mode.
	TenantRatio map[string]float64
}

// Record reports whether a job for tenant with trace identity id
// should record spans.
func (s TraceSampler) Record(tenant string, id TraceID) bool {
	if s.Mode != SampleRatio {
		return true
	}
	r := s.Ratio
	if tr, ok := s.TenantRatio[tenant]; ok {
		r = tr
	}
	if r >= 1 {
		return true
	}
	if r <= 0 {
		return false
	}
	v := binary.BigEndian.Uint64(id[8:])
	return float64(v) < r*float64(math.MaxUint64)
}

// Retain reports whether a recorded trace should stay in the flight
// recorder once its job reached a terminal state.
func (s TraceSampler) Retain(failed bool) bool {
	if s.Mode == SampleErrors {
		return failed
	}
	return true
}

// defaultMaxSpans bounds one trace's span count; chunk spans dominate,
// and 4096 covers a whole-genome scan at the default chunk size while
// keeping a runaway trace under ~1 MiB.
const defaultMaxSpans = 4096

// SpanTracer records one request's hierarchical span tree. It
// implements Tracer, attaching seam spans (engine phases,
// per-chromosome scans, worker chunks) as children of the current
// ambient span — the attempt span the orchestrator installs with
// SetAmbient — so the whole pipeline joins one tree with no engine
// signature changes. All methods are safe for concurrent use and no-ops
// on a nil receiver.
type SpanTracer struct {
	traceID   TraceID
	wallStart time.Time
	monoStart int64
	root      *Span // immutable after construction

	// ambient is the span new seam spans parent under (the current
	// attempt); nil parents them under the root.
	ambient atomic.Pointer[Span]

	mu      sync.Mutex
	max     int     // guarded by mu
	spans   []*Span // guarded by mu; spans[0] is the root
	dropped int64   // guarded by mu
}

// NewSpanTracer starts a trace tid with a root span named rootName
// whose parent is the (possibly zero) inbound span identity.
func NewSpanTracer(tid TraceID, rootName string, parent SpanID) *SpanTracer {
	t := &SpanTracer{traceID: tid, wallStart: Wall(), monoStart: Now(), max: defaultMaxSpans}
	t.root = &Span{tracer: t, id: NewSpanID(), parent: parent, name: rootName}
	t.mu.Lock()
	t.spans = append(t.spans, t.root)
	t.mu.Unlock()
	return t
}

// SetMaxSpans rebounds the span budget (minimum 2: root plus one).
func (t *SpanTracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	if n < 2 {
		n = 2
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// TraceID returns the trace identity (zero on a nil tracer).
func (t *SpanTracer) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// Root returns the root span (nil on a nil tracer).
func (t *SpanTracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Dropped returns the number of spans discarded over the span budget.
func (t *SpanTracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SetAmbient installs s as the parent for subsequent seam spans
// (Tracer.StartSpan and SpanTracer.StartChild). Pass nil to fall back
// to the root.
func (t *SpanTracer) SetAmbient(s *Span) {
	if t == nil {
		return
	}
	t.ambient.Store(s)
}

// StartSpan implements Tracer: the named span becomes a child of the
// ambient span and the returned func ends it.
func (t *SpanTracer) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	_, end := t.StartChild(name)
	return end
}

// StartChild starts a span under the current ambient span (the root
// when no ambient is set) and returns it with its end func, which must
// be called (or deferred) exactly once.
func (t *SpanTracer) StartChild(name string) (*Span, func()) {
	if t == nil {
		return nil, func() {}
	}
	parent := t.ambient.Load()
	if parent == nil {
		parent = t.Root()
	}
	return parent.StartChild(name)
}

// register admits s under the span budget.
func (t *SpanTracer) register(s *Span) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return false
	}
	t.spans = append(t.spans, s)
	return true
}

// SpanAttr is one key/value annotation on a span.
type SpanAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanEvent is one timestamped log line attached to a span — the
// trace-local view of the slog events the service emits.
type SpanEvent struct {
	// OffsetNs is the event time relative to the trace start.
	OffsetNs int64 `json:"offset_ns"`
	// Msg is the event text.
	Msg string `json:"msg"`
}

// Span is one node of a trace. A nil *Span accepts every method as a
// no-op, so callers on unsampled paths never branch.
type Span struct {
	tracer  *SpanTracer
	id      SpanID
	parent  SpanID
	name    string
	startNs int64 // offset from the tracer's monotonic start

	mu     sync.Mutex
	ended  bool        // guarded by mu
	endNs  int64       // guarded by mu
	attrs  []SpanAttr  // guarded by mu
	events []SpanEvent // guarded by mu
}

// ID returns the span identity (zero on a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// StartChild starts a named child span and returns it with its end
// func, which must be called (or deferred) exactly once. Over the
// tracer's span budget the child is dropped and both returns are
// no-ops.
func (s *Span) StartChild(name string) (*Span, func()) {
	if s == nil || s.tracer == nil {
		return nil, func() {}
	}
	t := s.tracer
	c := &Span{tracer: t, id: NewSpanID(), parent: s.id, name: name, startNs: Now() - t.monoStart}
	if !t.register(c) {
		return nil, func() {}
	}
	var once sync.Once
	return c, func() {
		once.Do(func() {
			end := Now() - t.monoStart
			c.mu.Lock()
			c.ended, c.endNs = true, end
			c.mu.Unlock()
		})
	}
}

// End closes the span directly — used for the root, whose lifetime the
// orchestrator owns. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := Now() - s.tracer.monoStart
	s.mu.Lock()
	if !s.ended {
		s.ended, s.endNs = true, end
	}
	s.mu.Unlock()
}

// SetAttr annotates the span; a repeated key overwrites in the
// rendered tree.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, SpanAttr{Key: key, Value: value})
	s.mu.Unlock()
}

// Eventf appends a timestamped log event to the span.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil {
		return
	}
	ev := SpanEvent{OffsetNs: Now() - s.tracer.monoStart, Msg: fmt.Sprintf(format, args...)}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// spanCtxKey keys the current span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span;
// downstream stages start their children under it.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span carried by ctx, or nil —
// which, by the nil-receiver convention, is itself a valid no-op span.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// spanView is one span flattened under the tracer lock for rendering.
type spanView struct {
	id, parent SpanID
	name       string
	startNs    int64
	durNs      int64
	open       bool
	attrs      []SpanAttr
	events     []SpanEvent
}

// snapshotViews flattens the span set. Lock order: tracer.mu is
// released before any span.mu is taken.
func (t *SpanTracer) snapshotViews() ([]spanView, int64) {
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()
	nowNs := Now() - t.monoStart
	views := make([]spanView, 0, len(spans))
	for _, s := range spans {
		v := spanView{id: s.id, parent: s.parent, name: s.name, startNs: s.startNs}
		s.mu.Lock()
		if s.ended {
			v.durNs = s.endNs - s.startNs
		} else {
			v.durNs, v.open = nowNs-s.startNs, true
		}
		if len(s.attrs) > 0 {
			v.attrs = append([]SpanAttr(nil), s.attrs...)
		}
		if len(s.events) > 0 {
			v.events = append([]SpanEvent(nil), s.events...)
		}
		s.mu.Unlock()
		if v.durNs < 0 {
			v.durNs = 0
		}
		views = append(views, v)
	}
	return views, dropped
}

// SpanNode is one span of a rendered tree.
type SpanNode struct {
	// SpanID and ParentID are the 16-hex-char span identities; the root's
	// ParentID is the inbound traceparent's span (empty when locally
	// originated).
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Name is the span label ("queue-wait", "attempt 2", "hyperscan chr7
	// chunk 3", ...).
	Name string `json:"name"`
	// StartNs is the span start relative to the trace start; DurNs is its
	// duration (elapsed-so-far when Open).
	StartNs int64 `json:"start_ns"`
	DurNs   int64 `json:"dur_ns"`
	// Open marks a span not yet ended at snapshot time.
	Open bool `json:"open,omitempty"`
	// Attrs holds the span annotations (repeated keys collapse to the
	// last write).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Events holds timestamped log lines attached to the span.
	Events []SpanEvent `json:"events,omitempty"`
	// Children are the child spans in start order.
	Children []*SpanNode `json:"children,omitempty"`
}

// SpanTree is the JSON rendering of one trace, served by
// /debug/trace/{jobID}.
type SpanTree struct {
	// TraceID is the 32-hex-char trace identity.
	TraceID string `json:"trace_id"`
	// StartWall stamps the trace start in wall time (RFC 3339).
	StartWall string `json:"start_wall"`
	// DroppedSpans counts spans discarded over the span budget.
	DroppedSpans int64 `json:"dropped_spans,omitempty"`
	// Root is the request root span.
	Root *SpanNode `json:"root"`
}

// Tree renders the current span set as a nested tree. Safe to call
// while spans are still opening; in-flight spans appear with Open set.
func (t *SpanTracer) Tree() *SpanTree {
	if t == nil {
		return nil
	}
	views, dropped := t.snapshotViews()
	nodes := make(map[SpanID]*SpanNode, len(views))
	order := make([]*SpanNode, 0, len(views))
	for _, v := range views {
		n := &SpanNode{
			SpanID: v.id.String(), Name: v.name,
			StartNs: v.startNs, DurNs: v.durNs, Open: v.open,
			Events: v.events,
		}
		if !v.parent.IsZero() {
			n.ParentID = v.parent.String()
		}
		if len(v.attrs) > 0 {
			n.Attrs = make(map[string]string, len(v.attrs))
			for _, a := range v.attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[v.id] = n
		order = append(order, n)
	}
	root := order[0]
	for i, v := range views {
		if i == 0 {
			continue
		}
		parent, ok := nodes[v.parent]
		if !ok || parent == order[i] {
			parent = root
		}
		parent.Children = append(parent.Children, order[i])
	}
	for _, n := range order {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].StartNs < n.Children[j].StartNs
		})
	}
	return &SpanTree{
		TraceID:      t.traceID.String(),
		StartWall:    t.wallStart.UTC().Format(time.RFC3339Nano),
		DroppedSpans: dropped,
		Root:         root,
	}
}

// WriteChrome renders the trace in the Chrome trace-event JSON array
// format (chrome://tracing, Perfetto, speedscope). Overlapping spans
// are assigned greedy lanes so concurrent worker chunks render side by
// side.
func (t *SpanTracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	views, _ := t.snapshotViews()
	sort.SliceStable(views, func(i, j int) bool { return views[i].startNs < views[j].startNs })
	laneEnd := make([]int64, 0, 16)
	if _, err := io.WriteString(w, "["); err != nil {
		return err
	}
	for i, v := range views {
		lane := -1
		for li, end := range laneEnd {
			if end <= v.startNs {
				lane = li
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = v.startNs + v.durNs
		args := map[string]string{
			"trace_id": t.traceID.String(),
			"span_id":  v.id.String(),
		}
		for _, a := range v.attrs {
			args[a.Key] = a.Value
		}
		ev := struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		}{v.name, "X", 1, lane + 1, float64(v.startNs) / 1e3, float64(v.durNs) / 1e3, args}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
