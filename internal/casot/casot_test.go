package casot

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

func randSpecs(rng *rand.Rand, n, m, k int) []arch.PatternSpec {
	pam := dna.MustParsePattern("NGG")
	specs := make([]arch.PatternSpec, n)
	for i := range specs {
		spacer := make(dna.Seq, m)
		for j := range spacer {
			spacer[j] = dna.Base(rng.Intn(4))
		}
		specs[i] = arch.PatternSpec{Spacer: dna.PatternFromSeq(spacer), PAM: pam, K: k, Code: int32(i)}
	}
	return specs
}

func chromOf(rng *rand.Rand, n int, ambRate float64) *genome.Chromosome {
	seq := make(dna.Seq, n)
	for i := range seq {
		if rng.Float64() < ambRate {
			seq[i] = dna.BadBase
		} else {
			seq[i] = dna.Base(rng.Intn(4))
		}
	}
	return &genome.Chromosome{Name: "t", Seq: seq, Packed: dna.Pack(seq)}
}

func collect(t *testing.T, e arch.Engine, c *genome.Chromosome) []automata.Report {
	t.Helper()
	var out []automata.Report
	if err := e.ScanChrom(c, func(r automata.Report) { out = append(out, r) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// oracle applies the seed-constrained reference semantics.
func oracle(specs []arch.PatternSpec, seq dna.Seq, opt Options) []automata.Report {
	var out []automata.Report
	for _, spec := range specs {
		sl := len(spec.Spacer)
		site := spec.SiteLen()
		seedStart := sl - opt.SeedLen
		for p := 0; p+site <= len(seq); p++ {
			w := seq[p : p+site]
			if w.HasAmbiguous() {
				continue
			}
			if !spec.PAM.Matches(w[sl:]) {
				continue
			}
			total, seed := 0, 0
			for i := 0; i < sl; i++ {
				if !spec.Spacer[i].Has(w[i]) {
					total++
					if i >= seedStart {
						seed++
					}
				}
			}
			if total <= spec.K && seed <= opt.MaxSeedMismatches {
				out = append(out, automata.Report{Code: spec.Code, End: p + site - 1})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Code < out[j].Code
	})
	return out
}

func equal(a, b []automata.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNaiveMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		m := 8 + rng.Intn(6)
		opt := Options{SeedLen: 4 + rng.Intn(4), MaxSeedMismatches: rng.Intn(3)}
		specs := randSpecs(rng, 3, m, rng.Intn(4))
		c := chromOf(rng, 5000, 0.01)
		e, err := New(specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, e, c)
		want := oracle(specs, c.Seq, opt)
		if !equal(got, want) {
			t.Fatalf("trial %d: %d vs oracle %d", trial, len(got), len(want))
		}
	}
}

func TestIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 8; trial++ {
		m := 10 + rng.Intn(4)
		k := rng.Intn(4)
		opt := Options{SeedLen: 6, MaxSeedMismatches: rng.Intn(3)}
		specs := randSpecs(rng, 3, m, k)
		c := chromOf(rng, 8000, 0.01)
		naive, err := New(specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := NewIndex(specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		a := collect(t, naive, c)
		b := collect(t, indexed, c)
		if !equal(a, b) {
			t.Fatalf("trial %d (k=%d seedmm=%d): naive %d vs index %d", trial, k, opt.MaxSeedMismatches, len(a), len(b))
		}
	}
}

func TestFullSeedBudgetEqualsPlainHamming(t *testing.T) {
	// With MaxSeedMismatches == K the seed constraint is inert, so the
	// output must be the plain <=K Hamming site set.
	rng := rand.New(rand.NewSource(73))
	specs := randSpecs(rng, 2, 10, 2)
	c := chromOf(rng, 6000, 0)
	opt := Options{SeedLen: 6, MaxSeedMismatches: 2}
	e, err := New(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, e, c)
	want := oracle(specs, c.Seq, Options{SeedLen: 0, MaxSeedMismatches: 99})
	if !equal(got, want) {
		t.Fatalf("seed==K should be inert: %d vs %d", len(got), len(want))
	}
}

func TestSeedConstraintFilters(t *testing.T) {
	// A site with 2 mismatches both in the seed must pass with
	// MaxSeedMismatches=2 and fail with 1.
	spacer := dna.MustParseSeq("ACGTACGTAC")
	site := dna.MustParseSeq("ACGTACGTGG") // mismatches at positions 8,9
	g := append(append(dna.Seq{}, site...), dna.MustParseSeq("AGG")...)
	g = append(dna.MustParseSeq("TTTT"), g...)
	c := &genome.Chromosome{Name: "t", Seq: g, Packed: dna.Pack(g)}
	spec := []arch.PatternSpec{{Spacer: dna.PatternFromSeq(spacer), PAM: dna.MustParsePattern("NGG"), K: 2, Code: 0}}

	loose, _ := New(spec, Options{SeedLen: 4, MaxSeedMismatches: 2})
	strict, _ := New(spec, Options{SeedLen: 4, MaxSeedMismatches: 1})
	if n := len(collect(t, loose, c)); n != 1 {
		t.Fatalf("loose: %d sites, want 1", n)
	}
	if n := len(collect(t, strict, c)); n != 0 {
		t.Fatalf("strict: %d sites, want 0", n)
	}
}

func TestNewErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	if _, err := New(nil, DefaultOptions); err == nil {
		t.Error("empty specs must error")
	}
	specs := randSpecs(rng, 1, 10, 2)
	if _, err := New(specs, Options{SeedLen: 99}); err == nil {
		t.Error("seed longer than spacer must error")
	}
	if _, err := New(specs, Options{SeedLen: 4, MaxSeedMismatches: -1}); err == nil {
		t.Error("negative seed budget must error")
	}
	mixed := append(randSpecs(rng, 1, 10, 2), randSpecs(rng, 1, 12, 2)...)
	if _, err := New(mixed, DefaultOptions); err == nil {
		t.Error("mixed spacer lengths must error")
	}
}

func TestNewIndexErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	specs := randSpecs(rng, 1, 10, 2)
	if _, err := NewIndex(specs, Options{SeedLen: 0, MaxSeedMismatches: 1}); err == nil {
		t.Error("seed length 0 must error for index variant")
	}
	degenerate := []arch.PatternSpec{{
		Spacer: dna.MustParsePattern("ACGTACGTNN"),
		PAM:    dna.MustParsePattern("NGG"), K: 1, Code: 0,
	}}
	if _, err := NewIndex(degenerate, Options{SeedLen: 4, MaxSeedMismatches: 1}); err == nil {
		t.Error("degenerate seed must error for index variant")
	}
}

func TestSeedVariantCount(t *testing.T) {
	if SeedVariantCount(12, 0) != 1 {
		t.Error("budget 0 -> 1 variant")
	}
	if SeedVariantCount(12, 1) != 1+36 {
		t.Errorf("budget 1 = %d, want 37", SeedVariantCount(12, 1))
	}
	if SeedVariantCount(12, 2) != 1+36+594 {
		t.Errorf("budget 2 = %d, want 631", SeedVariantCount(12, 2))
	}
	// Enumeration count must agree with the closed form.
	seed := dna.MustParseSeq("ACGTAC")
	count := 0
	enumerateVariants(seed, 2, func(dna.Seq, int) { count++ })
	if count != SeedVariantCount(6, 2) {
		t.Errorf("enumerated %d, formula %d", count, SeedVariantCount(6, 2))
	}
}
