// Package casot reimplements CasOT (Xiao et al., Bioinformatics 2014),
// the single-threaded CPU baseline the paper compares against. CasOT
// walks every genome position, tests the PAM, and counts mismatches in
// the seed (PAM-proximal) and non-seed regions separately against each
// guide — a straightforward interpretive scan, which is why the paper's
// automata approaches beat it by orders of magnitude. The original is a
// Perl script; this Go reimplementation keeps the algorithm and thread
// model (one thread, byte-at-a-time comparisons, no bit packing) but is
// inevitably faster than Perl, which EXPERIMENTS.md accounts for when
// comparing measured ratios with the paper's.
//
// An additional seed-index variant (index.go) accelerates the same
// search with a genome k-mer index and seed-variant enumeration; it is
// used in the E-series ablations and is not part of the faithful
// baseline.
package casot

import (
	"fmt"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// Options configures the seed constraint. CasOT distinguishes the
// PAM-proximal seed region, where mismatches disturb binding most.
type Options struct {
	// SeedLen is the number of PAM-proximal spacer positions treated as
	// seed (CasOT default 12).
	SeedLen int
	// MaxSeedMismatches bounds mismatches inside the seed. Set it to
	// the spec's K to disable the distinction (the setting used for
	// cross-engine equivalence tests).
	MaxSeedMismatches int
}

// DefaultOptions mirrors CasOT's defaults.
var DefaultOptions = Options{SeedLen: 12, MaxSeedMismatches: 2}

// Engine is the faithful scan-and-count baseline.
type Engine struct {
	specs []arch.PatternSpec
	opt   Options

	// rec receives scan metrics; nil disables instrumentation. Being
	// single-threaded, the engine accumulates counts locally and
	// flushes once per chromosome.
	rec *metrics.Recorder
}

// SetMetrics implements arch.Instrumented.
func (e *Engine) SetMetrics(rec *metrics.Recorder) { e.rec = rec }

// New validates the pattern set. All specs must share spacer length and
// PAM (as with Cas-OFFinder, batching is per PAM).
func New(specs []arch.PatternSpec, opt Options) (*Engine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("casot: no patterns")
	}
	sl := len(specs[0].Spacer)
	for i, spec := range specs {
		if len(spec.Spacer) != sl || spec.SiteLen() != specs[0].SiteLen() {
			return nil, fmt.Errorf("casot: pattern %d geometry differs", i)
		}
		if spec.K < 0 || spec.K > sl {
			return nil, fmt.Errorf("casot: pattern %d budget out of range", i)
		}
	}
	if opt.SeedLen < 0 || opt.SeedLen > sl {
		return nil, fmt.Errorf("casot: seed length %d out of range 0..%d", opt.SeedLen, sl)
	}
	if opt.MaxSeedMismatches < 0 {
		return nil, fmt.Errorf("casot: negative seed budget")
	}
	return &Engine{specs: specs, opt: opt}, nil
}

// Name implements arch.Engine.
func (e *Engine) Name() string { return "casot" }

// ScanChrom implements arch.Engine: single thread, plain byte
// comparisons, and — faithful to the per-guide Perl tool — one full
// chromosome pass per guide, re-testing the PAM each time. The
// deliberately naive cost structure (genome x guides with no sharing) is
// the baseline the paper's 600x accelerator speedups are measured
// against.
//
//crisprlint:hotpath
func (e *Engine) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	seq := c.Seq
	spacerLen := len(e.specs[0].Spacer)
	site := e.specs[0].SiteLen()
	// Candidate windows for CasOT are positions x patterns: each pattern
	// rescans the chromosome, which is its defining cost structure.
	var candidates, pamHits, verifs int64
	for si := range e.specs {
		spec := &e.specs[si]
		pamOff := spec.PAMOffset()
		spacerOff := spec.SpacerOffset()
		// Hoist the per-spec pattern slices out of the position loop: the
		// emit call makes every spec field reload otherwise. The re-slice
		// pins len(spacer) to spacerLen (New validates the geometry) so
		// the byte loop below runs check-free.
		pam := spec.PAM
		spacer := spec.Spacer
		spacer = spacer[:spacerLen]
		// One table per spec per chromosome. Hoisting this into the Engine
		// was tried and measured ~10% slower (the fresh cache-hot table
		// wins in the inner loop), so the allocation stays, amortized over
		// the whole position loop; allocgate carries it in the baseline.
		inSeed := seedMembership(spacerLen, e.opt.SeedLen, spec.PAMLeft)
		inSeed = inSeed[:spacerLen]
		for p := 0; p+site <= len(seq); p++ {
			candidates++
			//crisprlint:allow boundshint the per-position PAM window is the modeled cost of this deliberately naive baseline
			if !pamOK(pam, seq[p+pamOff:p+pamOff+len(pam)]) {
				continue
			}
			pamHits++
			//crisprlint:allow boundshint the per-position spacer window is the modeled cost of this deliberately naive baseline
			window := seq[p+spacerOff : p+spacerOff+spacerLen]
			if window.HasAmbiguous() {
				continue
			}
			window = window[:spacerLen]
			verifs++
			total, seed := 0, 0
			ok := true
			for i := 0; i < spacerLen; i++ {
				if !spacer[i].Has(window[i]) {
					total++
					if inSeed[i] {
						seed++
					}
					if total > spec.K || seed > e.opt.MaxSeedMismatches {
						ok = false
						break
					}
				}
			}
			if ok {
				emit(automata.Report{Code: spec.Code, End: p + site - 1})
			}
		}
	}
	e.rec.Add(metrics.CounterCandidateWindows, candidates)
	e.rec.Add(metrics.CounterPrefilterHits, pamHits)
	e.rec.Add(metrics.CounterVerifications, verifs)
	return nil
}

// seedMembership marks the PAM-proximal seedLen spacer positions: the 3'
// end for PAM-right patterns, the 5' end for PAM-left (minus strand)
// patterns.
func seedMembership(spacerLen, seedLen int, pamLeft bool) []bool {
	in := make([]bool, spacerLen)
	for i := 0; i < seedLen && i < spacerLen; i++ {
		if pamLeft {
			in[i] = true
		} else {
			in[spacerLen-1-i] = true
		}
	}
	return in
}

func pamOK(pam dna.Pattern, w dna.Seq) bool {
	for i, m := range pam {
		if !m.Has(w[i]) {
			return false
		}
	}
	return true
}
