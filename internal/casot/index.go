package casot

import (
	"fmt"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// IndexEngine is the seed-index variant: instead of walking every
// position, it indexes the genome's seed-length k-mers once per
// chromosome, enumerates each guide's seed neighborhood within the seed
// mismatch budget, looks the variants up, and extends candidates. Its
// cost grows combinatorially with the seed budget — the blowup that
// makes seed-and-extend tools degrade at high k while the automata
// engines degrade only linearly, one of the paper's central
// observations.
type IndexEngine struct {
	specs []arch.PatternSpec
	opt   Options

	// rec receives scan metrics; nil disables instrumentation.
	rec *metrics.Recorder
}

// SetMetrics implements arch.Instrumented.
func (e *IndexEngine) SetMetrics(rec *metrics.Recorder) { e.rec = rec }

// NewIndex builds the seed-index engine. SeedLen must be in 1..16 so a
// seed packs into a uint32 key.
func NewIndex(specs []arch.PatternSpec, opt Options) (*IndexEngine, error) {
	base, err := New(specs, opt)
	if err != nil {
		return nil, err
	}
	if opt.SeedLen < 1 || opt.SeedLen > 16 {
		return nil, fmt.Errorf("casot: index seed length %d out of range 1..16", opt.SeedLen)
	}
	for i, spec := range specs {
		for _, m := range seedOfSpec(&spec, opt.SeedLen) {
			if m.Count() != 1 {
				return nil, fmt.Errorf("casot: pattern %d has a degenerate seed position; the index variant needs concrete seeds", i)
			}
		}
	}
	return &IndexEngine{specs: base.specs, opt: base.opt}, nil
}

// seedOfSpec returns the PAM-proximal seedLen spacer positions in window
// order: the spacer's 3' end for PAM-right, its 5' end for PAM-left.
func seedOfSpec(spec *arch.PatternSpec, seedLen int) dna.Pattern {
	if spec.PAMLeft {
		return spec.Spacer[:seedLen]
	}
	return spec.Spacer[len(spec.Spacer)-seedLen:]
}

// seedWindowOffset returns the window index where the seed begins.
func seedWindowOffset(spec *arch.PatternSpec, seedLen int) int {
	if spec.PAMLeft {
		return spec.SpacerOffset()
	}
	return spec.SpacerOffset() + len(spec.Spacer) - seedLen
}

// Name implements arch.Engine.
func (e *IndexEngine) Name() string { return "casot-index" }

// ScanChrom implements arch.Engine.
func (e *IndexEngine) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	seq := c.Seq
	spacerLen := len(e.specs[0].Spacer)
	site := e.specs[0].SiteLen()
	s := e.opt.SeedLen
	if len(seq) < site {
		return nil
	}

	// Index every seed-length k-mer by its start position.
	idx := make(map[uint32][]int32)
	var key uint32
	mask := uint32(1)<<(2*uint(s)) - 1
	valid := 0 // number of trailing concrete bases accumulated
	for i, b := range seq {
		if b > dna.T {
			valid = 0
			continue
		}
		key = (key<<2 | uint32(b)) & mask
		valid++
		if valid >= s {
			start := int32(i - s + 1)
			idx[key] = append(idx[key], start)
		}
	}

	seen := make(map[int64]bool)
	// Candidate windows here are index-probe hits (variant x indexed
	// position); PAM survivors and full-spacer extensions map onto the
	// prefilter-hit and verification counters.
	var candidates, pamHits, verifs int64
	for si := range e.specs {
		spec := &e.specs[si]
		seedPat := seedOfSpec(spec, s)
		seedOff := seedWindowOffset(spec, s)
		spacerOff := spec.SpacerOffset()
		pamOff := spec.PAMOffset()
		seed := make(dna.Seq, s)
		for i, m := range seedPat {
			for b := dna.A; b <= dna.T; b++ {
				if m.Has(b) {
					seed[i] = b
					break
				}
			}
		}
		budget := e.opt.MaxSeedMismatches
		if budget > spec.K {
			budget = spec.K
		}
		enumerateVariants(seed, budget, func(variant dna.Seq, used int) {
			vkey, _ := dna.KmerOf(variant)
			for _, seedPos := range idx[uint32(vkey)] {
				p := int(seedPos) - seedOff // window start
				if p < 0 || p+site > len(seq) {
					continue
				}
				candidates++
				if !pamOK(spec.PAM, seq[p+pamOff:p+pamOff+len(spec.PAM)]) {
					continue
				}
				pamHits++
				window := seq[p+spacerOff : p+spacerOff+spacerLen]
				if window.HasAmbiguous() {
					continue
				}
				verifs++
				// Extend: count total mismatches (seed part == used by
				// construction, but recount for clarity and safety).
				total := spec.Spacer.Mismatches(window)
				if total > spec.K {
					continue
				}
				dedupKey := int64(spec.Code)<<40 | int64(p)
				if !seen[dedupKey] {
					seen[dedupKey] = true
					emit(automata.Report{Code: spec.Code, End: p + site - 1})
				}
			}
		})
	}
	e.rec.Add(metrics.CounterCandidateWindows, candidates)
	e.rec.Add(metrics.CounterPrefilterHits, pamHits)
	e.rec.Add(metrics.CounterVerifications, verifs)
	return nil
}

// enumerateVariants calls fn for every sequence within Hamming distance
// maxMism of seed (including seed itself). fn receives the variant and
// the number of substituted positions; the variant buffer is reused.
func enumerateVariants(seed dna.Seq, maxMism int, fn func(v dna.Seq, used int)) {
	variant := seed.Clone()
	var rec func(pos, used int)
	rec = func(pos, used int) {
		if pos == len(seed) {
			fn(variant, used)
			return
		}
		rec(pos+1, used)
		if used < maxMism {
			orig := variant[pos]
			for b := dna.A; b <= dna.T; b++ {
				if b == orig {
					continue
				}
				variant[pos] = b
				rec(pos+1, used+1)
			}
			variant[pos] = orig
		}
	}
	rec(0, 0)
}

// SeedVariantCount returns the size of the Hamming ball enumerated per
// guide: sum_{j<=budget} C(s,j) * 3^j. It quantifies the combinatorial
// blowup in the E-series tables.
func SeedVariantCount(seedLen, budget int) int {
	total := 0
	for j := 0; j <= budget && j <= seedLen; j++ {
		total += binom(seedLen, j) * pow3(j)
	}
	return total
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func pow3(n int) int {
	r := 1
	for i := 0; i < n; i++ {
		r *= 3
	}
	return r
}
