package report

import (
	"bytes"
	"strings"
	"testing"
)

func summaryFixture() []Site {
	return []Site{
		{Guide: 0, Mismatches: 0},
		{Guide: 0, Mismatches: 3},
		{Guide: 0, Mismatches: 3},
		{Guide: 1, Mismatches: 0},
		{Guide: 1, Mismatches: 1},
		{Guide: 2, Mismatches: 0},
		// guide 3 has no sites at all
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(summaryFixture(), 4)
	if len(s) != 4 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0].Total != 3 || s[0].Perfect != 1 || s[0].ClosestOffTarget != 3 || s[0].ByMismatch[3] != 2 {
		t.Errorf("guide 0: %+v", s[0])
	}
	if s[1].ClosestOffTarget != 1 {
		t.Errorf("guide 1: %+v", s[1])
	}
	if s[2].ClosestOffTarget != -1 || s[2].Perfect != 1 {
		t.Errorf("guide 2: %+v", s[2])
	}
	if s[3].Total != 0 {
		t.Errorf("guide 3 must appear with zero sites: %+v", s[3])
	}
	// Out-of-range guides are ignored, not panicking.
	_ = Summarize([]Site{{Guide: 99}}, 2)
}

func TestRankBySpecificity(t *testing.T) {
	s := Summarize(summaryFixture(), 4)
	order := RankBySpecificity(s)
	// Guides 2 and 3 have no off-targets (most specific), then guide 0
	// (closest=3), then guide 1 (closest=1).
	pos := map[int]int{}
	for rank, g := range order {
		pos[g] = rank
	}
	if !(pos[2] < pos[0] && pos[3] < pos[0] && pos[0] < pos[1]) {
		t.Errorf("ranking wrong: %v", order)
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, Summarize(summaryFixture(), 2), 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "guide\ttotal\tmm0\tmm1\tmm2\tmm3\tclosest") {
		t.Errorf("header: %q", out)
	}
	if !strings.Contains(out, "0\t3\t1\t0\t0\t2\t3") {
		t.Errorf("guide 0 row: %q", out)
	}
	if !strings.Contains(out, "1\t2\t1\t1\t0\t0\t1") {
		t.Errorf("guide 1 row: %q", out)
	}
}
