package report

import (
	"bytes"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

func TestCodeRoundTrip(t *testing.T) {
	for guide := 0; guide < 100; guide += 7 {
		for _, strand := range []byte{'+', '-'} {
			g, s := DecodeCode(CodeFor(guide, strand))
			if g != guide || s != strand {
				t.Fatalf("(%d,%c) -> %d -> (%d,%c)", guide, strand, CodeFor(guide, strand), g, s)
			}
		}
	}
}

func fixture(t *testing.T) (*Resolver, *genome.Chromosome, dna.Pattern) {
	t.Helper()
	guide := dna.PatternFromSeq(dna.MustParseSeq("ACGTA"))
	pam := dna.MustParsePattern("NGG")
	r, err := NewResolver([]dna.Pattern{guide}, pam)
	if err != nil {
		t.Fatal(err)
	}
	// Plus site ACGTA+AGG at 3; minus site = revcomp(TCGTA+TGG) at 14:
	// revcomp(TCGTATGG) = CCATACGA.
	seq := dna.MustParseSeq("TTTACGTAAGGTTTCCATACGATT")
	c := &genome.Chromosome{Name: "chrT", Seq: seq, Packed: dna.Pack(seq)}
	return r, c, guide
}

func TestResolvePlus(t *testing.T) {
	r, c, _ := fixture(t)
	site, err := r.Resolve(c, automata.Report{Code: CodeFor(0, '+'), End: 10})
	if err != nil {
		t.Fatal(err)
	}
	if site.Pos != 3 || site.Strand != '+' || site.Mismatches != 0 {
		t.Errorf("site = %+v", site)
	}
	if site.SiteSeq != "ACGTAAGG" {
		t.Errorf("SiteSeq = %s", site.SiteSeq)
	}
	if site.Alignment != "....." {
		t.Errorf("Alignment = %q", site.Alignment)
	}
}

func TestResolveMinus(t *testing.T) {
	r, c, _ := fixture(t)
	// Window CCATACGA at 14..21; oriented = TCGTATGG: spacer TCGTA has
	// 1 mismatch vs ACGTA (position 0), PAM TGG valid.
	site, err := r.Resolve(c, automata.Report{Code: CodeFor(0, '-'), End: 21})
	if err != nil {
		t.Fatal(err)
	}
	if site.Pos != 14 || site.Strand != '-' || site.Mismatches != 1 {
		t.Errorf("site = %+v", site)
	}
	if site.SiteSeq != "TCGTATGG" {
		t.Errorf("SiteSeq = %s", site.SiteSeq)
	}
	if site.Alignment != "T...." {
		t.Errorf("Alignment = %q", site.Alignment)
	}
}

func TestResolveErrors(t *testing.T) {
	r, c, _ := fixture(t)
	if _, err := r.Resolve(c, automata.Report{Code: 99, End: 10}); err == nil {
		t.Error("out-of-range code must error")
	}
	if _, err := r.Resolve(c, automata.Report{Code: 0, End: 3}); err == nil {
		t.Error("window before chromosome start must error")
	}
	if _, err := r.Resolve(c, automata.Report{Code: 0, End: 999}); err == nil {
		t.Error("end beyond chromosome must error")
	}
	// Event pointing at a non-PAM window.
	if _, err := r.Resolve(c, automata.Report{Code: 0, End: 12}); err == nil {
		t.Error("invalid PAM must error (engine-bug detector)")
	}
}

func TestNewResolverErrors(t *testing.T) {
	if _, err := NewResolver(nil, nil); err == nil {
		t.Error("no guides must error")
	}
	gs := []dna.Pattern{dna.MustParsePattern("ACGT"), dna.MustParsePattern("ACGTA")}
	if _, err := NewResolver(gs, nil); err == nil {
		t.Error("ragged guides must error")
	}
}

func TestCollectorDedup(t *testing.T) {
	r, c, _ := fixture(t)
	col := NewCollector(r)
	ev := automata.Report{Code: CodeFor(0, '+'), End: 10}
	if err := col.Add(c, ev); err != nil {
		t.Fatal(err)
	}
	if err := col.Add(c, ev); err != nil {
		t.Fatal(err)
	}
	if len(col.Sites()) != 1 || col.Dropped != 1 {
		t.Errorf("dedup failed: %d sites, %d dropped", len(col.Sites()), col.Dropped)
	}
}

func TestCollectorSorting(t *testing.T) {
	guide := dna.PatternFromSeq(dna.MustParseSeq("ACGTA"))
	pam := dna.MustParsePattern("NGG")
	r, _ := NewResolver([]dna.Pattern{guide}, pam)
	seq := dna.MustParseSeq("ACGTAAGGTTTACGTAAGG")
	c := &genome.Chromosome{Name: "chrA", Seq: seq, Packed: dna.Pack(seq)}
	col := NewCollector(r)
	// Add in reverse order.
	if err := col.Add(c, automata.Report{Code: 0, End: 18}); err != nil {
		t.Fatal(err)
	}
	if err := col.Add(c, automata.Report{Code: 0, End: 7}); err != nil {
		t.Fatal(err)
	}
	sites := col.Sites()
	if len(sites) != 2 || sites[0].Pos != 0 || sites[1].Pos != 11 {
		t.Errorf("sorting wrong: %+v", sites)
	}
}

func TestHistogram(t *testing.T) {
	sites := []Site{{Mismatches: 0}, {Mismatches: 2}, {Mismatches: 2}, {Mismatches: 3}}
	h := Histogram(sites)
	if h[0] != 1 || h[2] != 2 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestWriteTSV(t *testing.T) {
	var buf bytes.Buffer
	sites := []Site{{Guide: 1, Chrom: "chr2", Pos: 42, Strand: '-', Mismatches: 2, SiteSeq: "ACGTAAGG", Alignment: "..T.A"}}
	if err := WriteTSV(&buf, sites); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "guide\tchrom") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "1\tchr2\t42\t-\t2\tACGTAAGG\t..T.A") {
		t.Errorf("row missing: %q", out)
	}
}

func TestWriteBED(t *testing.T) {
	var buf bytes.Buffer
	sites := []Site{
		{Guide: 0, Chrom: "chr1", Pos: 10, Strand: '+', Mismatches: 0, SiteSeq: "ACGTAAGG"},
		{Guide: 2, Chrom: "chr2", Pos: 50, Strand: '-', Mismatches: 7, SiteSeq: "ACGTAAGG"},
	}
	if err := WriteBED(&buf, sites); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "chr1\t10\t18\tguide0\t1000\t+") {
		t.Errorf("BED line 1 wrong: %q", out)
	}
	if !strings.Contains(out, "chr2\t50\t58\tguide2\t0\t-") {
		t.Errorf("BED score must clamp at 0: %q", out)
	}
}
