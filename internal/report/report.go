// Package report converts raw engine match events into resolved
// off-target sites: genomic coordinates, strand, verified mismatch
// counts, and human-readable alignments — the post-processing stage the
// paper's end-to-end measurements charge to the host.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// Site is one resolved off-target site.
type Site struct {
	// Guide is the index into the searched guide set.
	Guide int
	// Chrom and Pos locate the site: Pos is the 0-based plus-strand
	// start of the full window (spacer plus PAM).
	Chrom string
	Pos   int
	// Strand is '+' or '-'.
	Strand byte
	// Mismatches is the verified spacer mismatch count.
	Mismatches int
	// SiteSeq is the guide-oriented site sequence (reverse complemented
	// for minus-strand sites), spacer followed by PAM.
	SiteSeq string
	// Alignment marks mismatched spacer positions with the genomic base
	// and matches with '.', guide-oriented (e.g. "..A....T....").
	Alignment string
}

// CodeFor encodes a (guide, strand) pair as an engine event code.
func CodeFor(guide int, strand byte) int32 {
	c := int32(guide) * 2
	if strand == '-' {
		c++
	}
	return c
}

// DecodeCode inverts CodeFor.
func DecodeCode(code int32) (guide int, strand byte) {
	guide = int(code / 2)
	strand = '+'
	if code%2 == 1 {
		strand = '-'
	}
	return guide, strand
}

// Resolver turns events from one chromosome into Sites.
type Resolver struct {
	Guides  []dna.Pattern // spacer patterns, guide-oriented
	PAMs    []dna.Pattern // acceptable PAM patterns (same length each)
	SiteLen int
	// PAM5 marks Cas12a-style geometry: in guide orientation the PAM
	// precedes the spacer (and SiteSeq reads PAM-then-spacer).
	PAM5 bool
}

// NewResolver builds a resolver for a guide set. All guides must share a
// length, and all PAM patterns must share a length (multi-PAM searches
// such as NGG plus NAG pass several).
func NewResolver(guides []dna.Pattern, pams ...dna.Pattern) (*Resolver, error) {
	return NewResolverOriented(guides, false, pams...)
}

// NewResolverOriented is NewResolver with a selectable PAM side (pam5 =
// true for Cas12a-style 5' PAMs).
func NewResolverOriented(guides []dna.Pattern, pam5 bool, pams ...dna.Pattern) (*Resolver, error) {
	if len(guides) == 0 {
		return nil, fmt.Errorf("report: no guides")
	}
	for i, g := range guides {
		if len(g) != len(guides[0]) {
			return nil, fmt.Errorf("report: guide %d length differs", i)
		}
	}
	pamLen := 0
	if len(pams) > 0 {
		pamLen = len(pams[0])
		for i, p := range pams {
			if len(p) != pamLen {
				return nil, fmt.Errorf("report: PAM %d length differs", i)
			}
		}
	}
	return &Resolver{Guides: guides, PAMs: pams, SiteLen: len(guides[0]) + pamLen, PAM5: pam5}, nil
}

// pamOK reports whether any accepted PAM matches w.
func (r *Resolver) pamOK(w dna.Seq) bool {
	if len(r.PAMs) == 0 {
		return true
	}
	for _, p := range r.PAMs {
		if p.Matches(w) {
			return true
		}
	}
	return false
}

// Resolve converts one event on chromosome c into a Site, re-verifying
// the match against the sequence. Engines that emitted a correct event
// always resolve successfully; an error indicates an engine bug.
func (r *Resolver) Resolve(c *genome.Chromosome, ev automata.Report) (Site, error) {
	guide, strand := DecodeCode(ev.Code)
	if guide < 0 || guide >= len(r.Guides) {
		return Site{}, fmt.Errorf("report: event code %d outside guide set", ev.Code)
	}
	pos := ev.End - r.SiteLen + 1
	if pos < 0 || ev.End >= len(c.Seq) {
		return Site{}, fmt.Errorf("report: event end %d out of range on %s", ev.End, c.Name)
	}
	window := c.Seq[pos : pos+r.SiteLen]
	oriented := window
	if strand == '-' {
		oriented = window.ReverseComplement()
	}
	var spacer, pamSeq dna.Seq
	if r.PAM5 {
		pamLen := r.SiteLen - len(r.Guides[guide])
		pamSeq, spacer = oriented[:pamLen], oriented[pamLen:]
	} else {
		spacer, pamSeq = oriented[:len(r.Guides[guide])], oriented[len(r.Guides[guide]):]
	}
	if !r.pamOK(pamSeq) {
		return Site{}, fmt.Errorf("report: PAM %s invalid at %s:%d%c", pamSeq, c.Name, pos, strand)
	}
	g := r.Guides[guide]
	mism := 0
	var align strings.Builder
	for i, m := range g {
		if m.Has(spacer[i]) {
			align.WriteByte('.')
		} else {
			align.WriteByte(spacer[i].Char())
			mism++
		}
	}
	return Site{
		Guide:      guide,
		Chrom:      c.Name,
		Pos:        pos,
		Strand:     strand,
		Mismatches: mism,
		SiteSeq:    oriented.String(),
		Alignment:  align.String(),
	}, nil
}

// Collector accumulates sites across chromosomes with deduplication.
type Collector struct {
	resolver *Resolver
	seen     map[siteKey]bool
	sites    []Site
	// Dropped counts duplicate events (multiple engine paths reporting
	// the same site).
	Dropped int
}

type siteKey struct {
	guide  int
	chrom  string
	pos    int
	strand byte
}

// NewCollector wraps a resolver.
func NewCollector(r *Resolver) *Collector {
	return &Collector{resolver: r, seen: make(map[siteKey]bool)}
}

// Add resolves and stores one event.
func (col *Collector) Add(c *genome.Chromosome, ev automata.Report) error {
	site, err := col.resolver.Resolve(c, ev)
	if err != nil {
		return err
	}
	key := siteKey{site.Guide, site.Chrom, site.Pos, site.Strand}
	if col.seen[key] {
		col.Dropped++
		return nil
	}
	col.seen[key] = true
	col.sites = append(col.sites, site)
	return nil
}

// Sites returns the collected sites sorted by (chrom, pos, strand, guide).
func (col *Collector) Sites() []Site {
	sort.Slice(col.sites, func(i, j int) bool {
		a, b := col.sites[i], col.sites[j]
		if a.Chrom != b.Chrom {
			return a.Chrom < b.Chrom
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.Strand != b.Strand {
			return a.Strand < b.Strand
		}
		return a.Guide < b.Guide
	})
	return col.sites
}

// Histogram counts sites per mismatch level.
func Histogram(sites []Site) map[int]int {
	h := make(map[int]int)
	for _, s := range sites {
		h[s.Mismatches]++
	}
	return h
}

// WriteBED emits sites as BED6 intervals (0-based half-open, the
// genomics interchange convention): name = guide index, score = a
// 0-1000 scale decreasing with mismatches.
func WriteBED(w io.Writer, sites []Site) error {
	for _, s := range sites {
		if err := WriteBEDRow(w, s); err != nil {
			return err
		}
	}
	return nil
}

// WriteBEDRow emits one site as a BED6 row — the incremental unit the
// streaming CLI writes from its yield callback, so batch and streamed
// output are byte-identical by construction.
func WriteBEDRow(w io.Writer, s Site) error {
	score := 1000 - 150*s.Mismatches
	if score < 0 {
		score = 0
	}
	end := s.Pos + len(s.SiteSeq)
	_, err := fmt.Fprintf(w, "%s\t%d\t%d\tguide%d\t%d\t%c\n",
		s.Chrom, s.Pos, end, s.Guide, score, s.Strand)
	return err
}

// WriteTSV emits sites in a Cas-OFFinder-like tab-separated layout.
func WriteTSV(w io.Writer, sites []Site) error {
	if err := WriteTSVHeader(w); err != nil {
		return err
	}
	for _, s := range sites {
		if err := WriteTSVRow(w, s); err != nil {
			return err
		}
	}
	return nil
}

// WriteTSVHeader emits the TSV column header line.
func WriteTSVHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "guide\tchrom\tpos\tstrand\tmismatches\tsite\talignment")
	return err
}

// WriteTSVRow emits one site as a TSV row (see WriteBEDRow on why rows
// are exposed individually).
func WriteTSVRow(w io.Writer, s Site) error {
	_, err := fmt.Fprintf(w, "%d\t%s\t%d\t%c\t%d\t%s\t%s\n",
		s.Guide, s.Chrom, s.Pos, s.Strand, s.Mismatches, s.SiteSeq, s.Alignment)
	return err
}
