package report

import (
	"fmt"
	"io"
	"sort"
)

// GuideSummary aggregates one guide's off-target landscape — the
// specificity report guide-design tools derive from the raw site list.
type GuideSummary struct {
	Guide int
	// Total sites found (including any perfect on-target matches).
	Total int
	// ByMismatch[d] counts sites at exactly d mismatches.
	ByMismatch map[int]int
	// Perfect counts 0-mismatch sites (1 means a unique on-target).
	Perfect int
	// ClosestOffTarget is the smallest nonzero mismatch count observed,
	// or -1 if the guide has no imperfect site (the most specific case).
	ClosestOffTarget int
}

// Summarize groups sites per guide. numGuides fixes the output length so
// guides with zero sites still appear.
func Summarize(sites []Site, numGuides int) []GuideSummary {
	out := make([]GuideSummary, numGuides)
	for i := range out {
		out[i] = GuideSummary{Guide: i, ByMismatch: map[int]int{}, ClosestOffTarget: -1}
	}
	for _, s := range sites {
		if s.Guide < 0 || s.Guide >= numGuides {
			continue
		}
		g := &out[s.Guide]
		g.Total++
		g.ByMismatch[s.Mismatches]++
		if s.Mismatches == 0 {
			g.Perfect++
		} else if g.ClosestOffTarget < 0 || s.Mismatches < g.ClosestOffTarget {
			g.ClosestOffTarget = s.Mismatches
		}
	}
	return out
}

// WriteSummary renders the per-guide table: guide, total, per-distance
// counts up to maxK, and the closest off-target distance.
func WriteSummary(w io.Writer, summaries []GuideSummary, maxK int) error {
	if _, err := fmt.Fprint(w, "guide\ttotal"); err != nil {
		return err
	}
	for d := 0; d <= maxK; d++ {
		if _, err := fmt.Fprintf(w, "\tmm%d", d); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "\tclosest"); err != nil {
		return err
	}
	for _, g := range summaries {
		if _, err := fmt.Fprintf(w, "%d\t%d", g.Guide, g.Total); err != nil {
			return err
		}
		for d := 0; d <= maxK; d++ {
			if _, err := fmt.Fprintf(w, "\t%d", g.ByMismatch[d]); err != nil {
				return err
			}
		}
		closest := "-"
		if g.ClosestOffTarget >= 0 {
			closest = fmt.Sprintf("%d", g.ClosestOffTarget)
		}
		if _, err := fmt.Fprintf(w, "\t%s\n", closest); err != nil {
			return err
		}
	}
	return nil
}

// RankBySpecificity orders guide indices from most to least specific:
// fewer close off-targets first (larger closest distance, then fewer
// total imperfect sites). Ties break by guide index for determinism.
func RankBySpecificity(summaries []GuideSummary) []int {
	order := make([]int, len(summaries))
	for i := range order {
		order[i] = i
	}
	key := func(i int) (int, int) {
		g := summaries[i]
		closest := g.ClosestOffTarget
		if closest < 0 {
			closest = 1 << 20 // no off-target at all: best
		}
		return closest, g.Total - g.Perfect
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, ia := key(order[a])
		cb, ib := key(order[b])
		if ca != cb {
			return ca > cb // larger closest distance = more specific
		}
		if ia != ib {
			return ia < ib
		}
		return order[a] < order[b]
	})
	return order
}
