package casoffinder

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/hscan"
)

func randSpecs(rng *rand.Rand, n, m, k int) []arch.PatternSpec {
	pam := dna.MustParsePattern("NGG")
	specs := make([]arch.PatternSpec, n)
	for i := range specs {
		spacer := make(dna.Seq, m)
		for j := range spacer {
			spacer[j] = dna.Base(rng.Intn(4))
		}
		specs[i] = arch.PatternSpec{Spacer: dna.PatternFromSeq(spacer), PAM: pam, K: k, Code: int32(i)}
	}
	return specs
}

func chromOf(rng *rand.Rand, n int, ambRate float64) *genome.Chromosome {
	seq := make(dna.Seq, n)
	for i := range seq {
		if rng.Float64() < ambRate {
			seq[i] = dna.BadBase
		} else {
			seq[i] = dna.Base(rng.Intn(4))
		}
	}
	return &genome.Chromosome{Name: "t", Seq: seq, Packed: dna.Pack(seq)}
}

func collect(t *testing.T, e arch.Engine, c *genome.Chromosome) []automata.Report {
	t.Helper()
	var out []automata.Report
	if err := e.ScanChrom(c, func(r automata.Report) { out = append(out, r) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Code < out[j].Code
	})
	return out
}

func TestAgreesWithHscan(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 8; trial++ {
		specs := randSpecs(rng, 4, 8+rng.Intn(8), rng.Intn(4))
		c := chromOf(rng, 8000, 0.01)
		co, err := New(specs, 1)
		if err != nil {
			t.Fatal(err)
		}
		hs, err := hscan.New(specs, hscan.ModeBitap)
		if err != nil {
			t.Fatal(err)
		}
		a := collect(t, co, c)
		b := collect(t, hs, c)
		if len(a) != len(b) {
			t.Fatalf("trial %d: casoffinder %d vs hscan %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d report %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestParallelWorkersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	specs := randSpecs(rng, 3, 10, 2)
	c := chromOf(rng, 20000, 0.005)
	serial, _ := New(specs, 1)
	par, _ := New(specs, 8)
	a := collect(t, serial, c)
	b := collect(t, par, c)
	if len(a) == 0 {
		t.Fatal("no matches; weak fixture")
	}
	if len(a) != len(b) {
		t.Fatalf("parallel differs: %d vs %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs", i)
		}
	}
}

func TestDegenerateGuidePositions(t *testing.T) {
	// Guide with a leading N: that position never mismatches.
	spec := []arch.PatternSpec{{
		Spacer: dna.MustParsePattern("NCGTACGT"),
		PAM:    dna.MustParsePattern("NGG"), K: 0, Code: 5,
	}}
	seq := dna.MustParseSeq("TTGCGTACGTAGGTT") // GCGTACGT + AGG at pos 2
	c := &genome.Chromosome{Name: "t", Seq: seq, Packed: dna.Pack(seq)}
	e, err := New(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, e, c)
	if len(got) != 1 || got[0].End != 12 {
		t.Fatalf("got %v, want one site ending at 12", got)
	}
}

func TestNewErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	if _, err := New(nil, 1); err == nil {
		t.Error("empty specs must error")
	}
	long := randSpecs(rng, 1, 33, 0)
	if _, err := New(long, 1); err == nil {
		t.Error("spacer > 32 must error")
	}
	mixed := append(randSpecs(rng, 1, 10, 1), randSpecs(rng, 1, 12, 1)...)
	if _, err := New(mixed, 1); err == nil {
		t.Error("mixed lengths must error")
	}
	partial := []arch.PatternSpec{{
		Spacer: dna.MustParsePattern("ACGR"),
		PAM:    dna.MustParsePattern("NGG"), K: 0, Code: 0,
	}}
	if _, err := New(partial, 1); err == nil {
		t.Error("partially degenerate spacer (R) must error")
	}
}

func TestComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	e, _ := New(randSpecs(rng, 10, 20, 3), 1)
	pamTests, compares := e.Comparisons(1000000, 1.0/16)
	if pamTests != float64(1000000-23+1) {
		t.Errorf("pamTests = %f", pamTests)
	}
	want := pamTests / 16 * 10
	if math.Abs(compares-want) > 1e-6 {
		t.Errorf("compares = %f, want %f", compares, want)
	}
}

func TestGPUModel(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	specs := randSpecs(rng, 100, 20, 3)
	m, err := NewGPUModel(specs, DefaultGPU)
	if err != nil {
		t.Fatal(err)
	}
	var _ arch.Modeled = m
	b := m.EstimateBreakdown(10_000_000, 1000)
	if b.Kernel <= 0 || b.Transfer <= 0 || b.Compile <= 0 {
		t.Fatalf("breakdown has zero phases: %+v", b)
	}
	// Brute force: kernel time grows linearly with guides.
	m2, _ := NewGPUModel(randSpecs(rng, 1000, 20, 3), DefaultGPU)
	b2 := m2.EstimateBreakdown(10_000_000, 1000)
	ratio := b2.Kernel / b.Kernel
	if ratio < 5 || ratio > 11 {
		t.Errorf("10x guides should scale kernel ~10x (PAM scan amortized); got %.2fx", ratio)
	}
	// ... and does NOT grow with k (same guides, higher k).
	hiK := randSpecs(rng, 100, 20, 5)
	m3, _ := NewGPUModel(hiK, DefaultGPU)
	b3 := m3.EstimateBreakdown(10_000_000, 1000)
	if math.Abs(b3.Kernel-b.Kernel)/b.Kernel > 1e-9 {
		t.Errorf("brute-force kernel must be k-independent: %g vs %g", b3.Kernel, b.Kernel)
	}
	// Functional path still works.
	c := chromOf(rng, 3000, 0)
	_ = collect(t, m, c)
	if m.Name() != "cas-offinder-gpu" {
		t.Errorf("name = %s", m.Name())
	}
	if m.Resources() != (arch.ResourceUsage{}) {
		t.Error("GPU resources must be empty")
	}
}
