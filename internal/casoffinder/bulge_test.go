package casoffinder

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

func TestBulgeScanErrors(t *testing.T) {
	c := &genome.Chromosome{Name: "t", Seq: dna.MustParseSeq("ACGT")}
	if _, err := BulgeScan(c, nil, BulgeOptions{PAM: dna.MustParsePattern("NGG")}); err == nil {
		t.Error("no specs must error")
	}
	specs := []BulgeSpec{{Spacer: dna.MustParsePattern("ACGT"), Guide: 0}}
	if _, err := BulgeScan(c, specs, BulgeOptions{}); err == nil {
		t.Error("missing PAM must error")
	}
	ragged := append(specs, BulgeSpec{Spacer: dna.MustParsePattern("ACGTA"), Guide: 1})
	if _, err := BulgeScan(c, ragged, BulgeOptions{PAM: dna.MustParsePattern("NGG")}); err == nil {
		t.Error("ragged specs must error")
	}
}

func TestBulgeScanFindsPlanted(t *testing.T) {
	g := genome.Synthesize(genome.SynthConfig{Seed: 170, ChromLen: 20000})
	guide := dna.MustParseSeq("GACGCATAAAGATGAGACGC")
	del := append(append(dna.Seq{}, guide[:10]...), guide[11:]...)
	del = append(del, dna.MustParseSeq("AGG")...)
	c := &g.Chroms[0]
	copy(c.Seq[500:], del)
	c.Packed = dna.Pack(c.Seq)
	hits, err := BulgeScan(c, []BulgeSpec{{Spacer: dna.PatternFromSeq(guide), Guide: 0}},
		BulgeOptions{MaxMismatches: 0, MaxBulge: 1, PAM: dna.MustParsePattern("NGG")})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits {
		if h.Pos == 500 && h.Bulges == 1 && h.Strand == '+' {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted deletion not found: %+v", hits)
	}
}
