// Package casoffinder reimplements the Cas-OFFinder algorithm (Bae,
// Park & Kim, Bioinformatics 2014), the GPU baseline the paper compares
// against. The algorithm is a two-step brute force over every genome
// position: (1) test the PAM pattern at the candidate window's PAM side,
// (2) if it matches, count spacer mismatches against every guide with
// early exit at the budget. Both strands are covered in one forward
// pass: plus-strand patterns carry the PAM on the right, minus-strand
// patterns (reverse-complemented by the orchestrator) carry it on the
// left, exactly as Cas-OFFinder matches NGG and CCN simultaneously.
//
// Cas-OFFinder parallelizes the position loop with OpenCL; here the same
// data parallelism is expressed with worker goroutines over genome
// chunks, and the inner comparison uses the 2-bit packed XOR + popcount
// form. A separate analytic GPU throughput model (gpu.go) predicts
// device timing for the paper's figures.
package casoffinder

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// compiledGuide is the packed comparison form of one spec.
type compiledGuide struct {
	word     uint64 // packed spacer (arbitrary bases at degenerate positions)
	laneMask uint64 // 2-bit lanes of concrete spacer positions
	k        int
	code     int32
}

// group holds the guides sharing one (PAM, orientation) pair.
type group struct {
	key       string // PAM string, "<"-prefixed for PAM-left
	guides    []compiledGuide
	pam       dna.Pattern
	pamT      [][5]bool
	pamOff    int // window offset of the PAM
	spacerOff int // window offset of the spacer
}

// Engine is a compiled Cas-OFFinder-style scanner. All specs must share
// a spacer length; guides are batched into one group per distinct
// (PAM, orientation) pair, so searches mixing PAM types (NGG plus NAG)
// run in a single pass, as Cas-OFFinder's multi-PAM batches do.
type Engine struct {
	groups    []group
	spacerLen int
	siteLen   int
	numGuides int
	// Workers is the data-parallel width (1 = faithful single-queue;
	// larger mirrors the GPU's position parallelism).
	Workers int

	// chunkHook, when set, runs at the start of every pool chunk with
	// the chunk's [lo, hi) candidate-position bounds. Tests use it to
	// inject panics and trigger cancellation; it is nil in production.
	chunkHook func(lo, hi int)

	// rec receives scan metrics; nil disables instrumentation. Counts
	// accumulate locally per chunk and flush with one atomic add each.
	rec *metrics.Recorder
}

// SetMetrics implements arch.Instrumented.
func (e *Engine) SetMetrics(rec *metrics.Recorder) { e.rec = rec }

// New compiles the pattern set.
func New(specs []arch.PatternSpec, workers int) (*Engine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("casoffinder: no patterns")
	}
	e := &Engine{Workers: workers}
	e.spacerLen = len(specs[0].Spacer)
	e.siteLen = specs[0].SiteLen()
	if e.spacerLen == 0 || e.spacerLen > 32 {
		return nil, fmt.Errorf("casoffinder: spacer length %d out of range 1..32", e.spacerLen)
	}
	for i, spec := range specs {
		if len(spec.Spacer) != e.spacerLen || spec.SiteLen() != e.siteLen {
			return nil, fmt.Errorf("casoffinder: pattern %d geometry differs from pattern 0", i)
		}
		if spec.K < 0 || spec.K > e.spacerLen {
			return nil, fmt.Errorf("casoffinder: pattern %d budget %d out of range", i, spec.K)
		}
		key := spec.PAM.String()
		if spec.PAMLeft {
			key = "<" + key
		}
		gi := -1
		for j := range e.groups {
			if e.groups[j].key == key {
				gi = j
				break
			}
		}
		if gi < 0 {
			gi = len(e.groups)
			e.groups = append(e.groups, group{
				key:       key,
				pam:       spec.PAM,
				pamT:      pamTable(spec.PAM),
				pamOff:    spec.PAMOffset(),
				spacerOff: spec.SpacerOffset(),
			})
		}
		g := &e.groups[gi]
		var cg compiledGuide
		cg.k = spec.K
		cg.code = spec.Code
		for pos, mask := range spec.Spacer {
			switch mask.Count() {
			case 1:
				var b dna.Base
				for b = dna.A; b <= dna.T; b++ {
					if mask.Has(b) {
						break
					}
				}
				cg.word |= uint64(b) << uint(2*pos)
				cg.laneMask |= 3 << uint(2*pos)
			case 4:
				// N position: excluded from comparison entirely.
			default:
				return nil, fmt.Errorf("casoffinder: pattern %d has a partially degenerate spacer position (%s); only concrete or N supported", i, mask)
			}
		}
		g.guides = append(g.guides, cg)
		e.numGuides++
	}
	return e, nil
}

// Name implements arch.Engine.
func (e *Engine) Name() string { return "cas-offinder" }

// pamTable precomputes, for each PAM position, the acceptance of each
// base code (index 4 = ambiguous -> reject).
func pamTable(pam dna.Pattern) [][5]bool {
	t := make([][5]bool, len(pam))
	for i, m := range pam {
		for b := dna.A; b <= dna.T; b++ {
			t[i][b] = m.Has(b)
		}
	}
	return t
}

func codeOf(b dna.Base) int {
	if b > dna.T {
		return 4
	}
	return int(b)
}

// ScanChrom implements arch.Engine. It is the ctx-less compatibility
// bridge; cancellation-aware callers use ScanChromContext.
func (e *Engine) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	return e.ScanChromContext(context.Background(), c, emit)
}

// ScanChromContext implements arch.ContextEngine: candidate window
// positions drain through the arch.ChunkScan worker pool, which checks
// ctx between chunks (so cancellation latency is bounded by
// arch.DefaultChunk positions) and isolates worker panics into errors
// naming the chunk.
func (e *Engine) ScanChromContext(ctx context.Context, c *genome.Chromosome, emit func(automata.Report)) error {
	total := len(c.Seq) - e.siteLen + 1
	if total <= 0 {
		return nil
	}
	workers := e.Workers
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	chunks, err := arch.ChunkScan(ctx, e.Name()+" "+c.Name, workers, total, arch.DefaultChunk, e.rec,
		//crisprlint:hotpath
		func(lo, hi int, out *[]automata.Report) error {
			if h := e.chunkHook; h != nil {
				h(lo, hi)
			}
			var hits, verifs int64
			*out, hits, verifs = e.scanSpan(c, lo, hi)
			e.rec.Add(metrics.CounterCandidateWindows, int64(hi-lo))
			e.rec.Add(metrics.CounterPrefilterHits, hits)
			e.rec.Add(metrics.CounterVerifications, verifs)
			return nil
		})
	if err != nil {
		return err
	}
	for _, rs := range chunks {
		for _, r := range rs {
			emit(r)
		}
	}
	return nil
}

// scanSpan tests candidate window starts in [lo, hi). Alongside the
// match reports it returns the counts of PAM hits (step-1 survivors)
// and per-guide spacer verifications, accumulated locally so the
// caller flushes them to the metrics recorder once per chunk.
//
//crisprlint:hotpath
func (e *Engine) scanSpan(c *genome.Chromosome, lo, hi int) (out []automata.Report, hits, verifs int64) {
	for p := lo; p < hi; p++ {
		for gi := range e.groups {
			var h, v int64
			out, h, v = e.scanGroup(&e.groups[gi], c, p, out)
			hits += h
			verifs += v
		}
	}
	return out, hits, verifs
}

//crisprlint:hotpath
func (e *Engine) scanGroup(g *group, c *genome.Chromosome, p int, out []automata.Report) ([]automata.Report, int64, int64) {
	if len(g.guides) == 0 {
		return out, 0, 0
	}
	seq := c.Seq
	// Step 1: PAM test (cheap rejection, as in Cas-OFFinder).
	for i := range g.pamT {
		if !g.pamT[i][codeOf(seq[p+g.pamOff+i])] {
			return out, 0, 0
		}
	}
	// Step 2: per-guide packed comparison. Any ambiguous base in the
	// spacer window disqualifies the site for every guide, matching the
	// dead-symbol semantics of the automata engines.
	codes, amb := c.Packed.Window(p+g.spacerOff, e.spacerLen)
	if amb != 0 {
		return out, 1, 0
	}
	for gi := range g.guides {
		cg := &g.guides[gi]
		diff := (codes ^ cg.word) & cg.laneMask
		diff = (diff | diff>>1) & 0x5555555555555555
		if bits.OnesCount64(diff) <= cg.k {
			//crisprlint:allow hotpath match reports are rare relative to positions; the batch grows amortized
			out = append(out, automata.Report{Code: cg.code, End: p + e.siteLen - 1})
		}
	}
	return out, 1, int64(len(g.guides))
}

// Comparisons returns the work a genome of the given size requires (the
// GPU model's unit): PAM tests per position per orientation in use, plus
// spacer comparisons per guide per PAM hit.
func (e *Engine) Comparisons(genomeLen int, pamHitRate float64) (pamTests, spacerCompares float64) {
	positions := float64(genomeLen - e.siteLen + 1)
	if positions < 0 {
		positions = 0
	}
	for gi := range e.groups {
		spacerCompares += positions * pamHitRate * float64(len(e.groups[gi].guides))
	}
	return positions * float64(len(e.groups)), spacerCompares
}

// NumGuides returns the compiled guide count.
func (e *Engine) NumGuides() int { return e.numGuides }

// SiteLen returns the window length.
func (e *Engine) SiteLen() int { return e.siteLen }
