package casoffinder

import (
	"context"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// GPUParams describes the OpenCL device the paper ran Cas-OFFinder on.
// Rates are *effective sustained* rates for this algorithm, calibrated
// against Cas-OFFinder's published whole-genome runtimes (tens of
// seconds to minutes for ~100 guides on hg19-class genomes) rather than
// against the paper under reproduction, so the E4 speedup comparison
// stays an output of the model, not an input.
type GPUParams struct {
	// PAMTestsPerSec is the sustained rate of step-1 PAM tests.
	PAMTestsPerSec float64
	// ComparesPerSec is the sustained rate of step-2 guide-window
	// comparisons (each touches the full spacer; Cas-OFFinder's inner
	// loop is global-memory bound, which keeps this far below ALU peak).
	ComparesPerSec float64
	// TransferBytesPerSec models PCIe streaming of the packed genome.
	TransferBytesPerSec float64
	// LaunchOverheadSec is fixed per-scan overhead (context, kernel
	// launches, buffer setup).
	LaunchOverheadSec float64
	// ReportCostSec is the host-side cost per reported site.
	ReportCostSec float64
}

// DefaultGPU approximates the mid-2010s discrete GPU used by the paper's
// Cas-OFFinder baseline.
var DefaultGPU = GPUParams{
	PAMTestsPerSec:      1.0e9,
	ComparesPerSec:      3.2e8,
	TransferBytesPerSec: 12e9,
	LaunchOverheadSec:   0.05,
	ReportCostSec:       2e-7,
}

// GPUModel wraps an Engine with the analytic device-timing model,
// implementing arch.Modeled. Functional results come from the wrapped
// engine (the algorithm is identical on CPU and GPU); timing comes from
// the model.
type GPUModel struct {
	*Engine
	Params GPUParams
}

// NewGPUModel compiles the pattern set and attaches the GPU model.
func NewGPUModel(specs []arch.PatternSpec, params GPUParams) (*GPUModel, error) {
	e, err := New(specs, 1)
	if err != nil {
		return nil, err
	}
	return &GPUModel{Engine: e, Params: params}, nil
}

// Name implements arch.Engine.
func (m *GPUModel) Name() string { return "cas-offinder-gpu" }

// SetMetrics implements arch.Instrumented: besides wiring the wrapped
// functional engine's counters, it records the model's one-time launch
// overhead as the analytic compile step.
func (m *GPUModel) SetMetrics(rec *metrics.Recorder) {
	m.Engine.SetMetrics(rec)
	rec.SetModeledSeconds("compile", m.Params.LaunchOverheadSec)
}

// ScanChromContext runs the wrapped functional scan and then records
// the analytic per-chromosome device-time steps (transfer, kernel,
// report) into the metrics recorder — the model stays deterministic;
// no wall clock is read.
func (m *GPUModel) ScanChromContext(ctx context.Context, c *genome.Chromosome, emit func(automata.Report)) error {
	reports := 0
	err := m.Engine.ScanChromContext(ctx, c, func(r automata.Report) {
		reports++
		emit(r)
	})
	if err != nil {
		return err
	}
	if rec := m.Engine.rec; rec != nil {
		b := m.EstimateBreakdown(len(c.Seq), reports)
		rec.AddModeledSeconds("transfer", b.Transfer)
		rec.AddModeledSeconds("kernel", b.Kernel)
		rec.AddModeledSeconds("report", b.Report)
	}
	return nil
}

// ScanChrom implements arch.Engine via the context-aware path so the
// modeled step recording is identical on both entry points.
func (m *GPUModel) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	return m.ScanChromContext(context.Background(), c, emit)
}

// pamHitRate is the expected fraction of positions passing a group's
// PAM test under a uniform base distribution, averaged across groups
// (reverse-complement PAMs give the same product, so mixed strands do
// not skew the average).
func (m *GPUModel) pamHitRate() float64 {
	if len(m.groups) == 0 {
		return 0
	}
	total := 0.0
	for gi := range m.groups {
		rate := 1.0
		for _, mask := range m.groups[gi].pam {
			rate *= float64(mask.Count()) / dna.AlphabetSize
		}
		total += rate
	}
	return total / float64(len(m.groups))
}

// EstimateBreakdown implements arch.Modeled. Brute-force work is
// independent of the mismatch budget (no early-exit modeling), which is
// exactly why the paper's automata approaches pull ahead as k grows.
func (m *GPUModel) EstimateBreakdown(inputLen, reportCount int) arch.Breakdown {
	pamTests, compares := m.Comparisons(inputLen, m.pamHitRate())
	return arch.Breakdown{
		Compile:  m.Params.LaunchOverheadSec,
		Transfer: float64(inputLen) / 4 / m.Params.TransferBytesPerSec, // 2-bit packed
		Kernel:   pamTests/m.Params.PAMTestsPerSec + compares/m.Params.ComparesPerSec,
		Report:   float64(reportCount) * m.Params.ReportCostSec,
	}
}

// Resources implements arch.Modeled; a GPU has no spatial state fabric,
// so the usage is empty.
func (m *GPUModel) Resources() arch.ResourceUsage { return arch.ResourceUsage{} }
