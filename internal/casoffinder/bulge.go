package casoffinder

import (
	"fmt"

	"github.com/cap-repro/crisprscan/internal/align"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// BulgeSpec describes one guide for the brute-force bulge search.
type BulgeSpec struct {
	Spacer dna.Pattern
	Guide  int
}

// BulgeOptions bounds the brute-force bulge search (the feature
// Cas-OFFinder added in version 2.4).
type BulgeOptions struct {
	MaxMismatches int
	MaxBulge      int
	PAM           dna.Pattern
}

// BulgeHit is one brute-force bulge-tolerant match, in the same
// coordinate convention as core.BulgeSite.
type BulgeHit struct {
	Guide      int
	Pos        int // plus-strand start of segment+PAM window
	Len        int // window length
	Strand     byte
	Mismatches int
	Bulges     int
}

// BulgeScan is the brute-force oracle for bulge-tolerant search: at
// every PAM occurrence (both strands), every guide is aligned to every
// feasible segment length with the bounded edit DP. It exists to
// cross-validate the edit automata (core.SearchBulge) — two independent
// implementations of the same semantics.
func BulgeScan(c *genome.Chromosome, specs []BulgeSpec, opt BulgeOptions) ([]BulgeHit, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("casoffinder: no bulge specs")
	}
	if len(opt.PAM) == 0 {
		return nil, fmt.Errorf("casoffinder: bulge scan requires a PAM")
	}
	m := len(specs[0].Spacer)
	for i, s := range specs {
		if len(s.Spacer) != m {
			return nil, fmt.Errorf("casoffinder: bulge spec %d length differs", i)
		}
	}
	pamRC := opt.PAM.ReverseComplement()
	seq := c.Seq
	var hits []BulgeHit
	// Plus strand: segment then PAM; scan PAM start positions.
	for pamStart := 0; pamStart+len(opt.PAM) <= len(seq); pamStart++ {
		if opt.PAM.Matches(seq[pamStart : pamStart+len(opt.PAM)]) {
			hits = appendStrandHits(hits, seq, specs, opt, pamStart, '+')
		}
		if pamRC.Matches(seq[pamStart : pamStart+len(opt.PAM)]) {
			hits = appendStrandHits(hits, seq, specs, opt, pamStart, '-')
		}
	}
	return hits, nil
}

// appendStrandHits aligns every guide against every feasible segment
// adjacent to the PAM occurrence at pamStart.
func appendStrandHits(hits []BulgeHit, seq dna.Seq, specs []BulgeSpec, opt BulgeOptions, pamStart int, strand byte) []BulgeHit {
	m := len(specs[0].Spacer)
	for L := m - opt.MaxBulge; L <= m+opt.MaxBulge; L++ {
		if L < 1 {
			continue
		}
		var pos, winLen int
		winLen = L + len(opt.PAM)
		if strand == '+' {
			pos = pamStart - L
		} else {
			pos = pamStart
		}
		if pos < 0 || pos+winLen > len(seq) {
			continue
		}
		window := seq[pos : pos+winLen]
		if window.HasAmbiguous() {
			continue
		}
		oriented := window
		if strand == '-' {
			oriented = window.ReverseComplement()
		}
		seg := oriented[:L]
		for _, spec := range specs {
			subs, gaps, ok := align.EditWithGaps(spec.Spacer, seg, opt.MaxMismatches, opt.MaxBulge)
			if !ok {
				continue
			}
			hits = append(hits, BulgeHit{
				Guide: spec.Guide, Pos: pos, Len: winLen, Strand: strand,
				Mismatches: subs, Bulges: gaps,
			})
		}
	}
	return hits
}
