package casoffinder

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
)

func TestScanChromContextCancelMidFlight(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	specs := randSpecs(rng, 3, 20, 2)
	c := chromOf(rng, 8*arch.DefaultChunk, 0.001)
	e, err := New(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	var after atomic.Int64
	e.chunkHook = func(lo, hi int) {
		once.Do(cancel)
		if ctx.Err() != nil {
			after.Add(1)
		}
	}

	err = e.ScanChromContext(ctx, c, func(automata.Report) {})
	if err == nil {
		t.Fatal("want cancellation error, got nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "canceled at chunk") {
		t.Fatalf("error does not name the chunk boundary: %v", err)
	}
	if got := after.Load(); got > int64(e.Workers) {
		t.Fatalf("%d chunks started after cancel; want <= %d", got, e.Workers)
	}
}

func TestScanChromContextWorkerPanicIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	specs := randSpecs(rng, 3, 20, 2)
	c := chromOf(rng, 4*arch.DefaultChunk, 0.001)
	e, err := New(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 3
	e.chunkHook = func(lo, hi int) {
		if lo > 0 {
			panic("injected worker fault")
		}
	}

	err = e.ScanChromContext(context.Background(), c, func(automata.Report) {})
	if err == nil {
		t.Fatal("want panic-derived error, got nil")
	}
	if !strings.Contains(err.Error(), "worker panic on chunk") {
		t.Fatalf("error does not report the panic: %v", err)
	}
	if !strings.Contains(err.Error(), "injected worker fault") {
		t.Fatalf("error does not carry the panic value: %v", err)
	}
}

func TestScanChromContextDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	specs := randSpecs(rng, 2, 20, 1)
	c := chromOf(rng, 4096, 0)
	e, err := New(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	err = e.ScanChromContext(ctx, c, func(automata.Report) {})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want wrapped context.DeadlineExceeded, got %v", err)
	}
}

func TestScanChromContextCleanRunMatchesBridge(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	specs := randSpecs(rng, 4, 20, 2)
	c := chromOf(rng, 3*arch.DefaultChunk+777, 0.002)
	e, err := New(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 4
	want := collect(t, e, c)
	var got []automata.Report
	if err := e.ScanChromContext(context.Background(), c, func(r automata.Report) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].End != got[j].End {
			return got[i].End < got[j].End
		}
		return got[i].Code < got[j].Code
	})
	if len(got) != len(want) {
		t.Fatalf("ctx path emitted %d reports, bridge %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("report %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}
