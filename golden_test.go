package crisprscan

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden output fixtures")

// goldenSites produces the deterministic site set the writer fixtures
// are checked in for. Any change to the output formats — column order,
// separators, score scale, coordinate convention — shows up as a byte
// diff against testdata/, which is the point: serialization changes
// must be deliberate, reviewed, and versioned.
func goldenSites(t *testing.T) (*Genome, []Guide, []Site) {
	t.Helper()
	// Two literal guides with planted occurrences: exact, mismatched and
	// minus-strand sites at fixed offsets inside a synthesized background
	// (random 20-mer matches within k=5 are vanishingly unlikely, so the
	// planted set IS the result set, deterministically).
	guides := []Guide{
		{Name: "g0", Spacer: "GACCTTAGCAATGCGTACTG"},
		{Name: "g1", Spacer: "TTGACGCATCCAGGTTAAGC"},
	}
	mutate := func(s string, at ...int) string {
		b := []byte(s)
		next := map[byte]byte{'A': 'C', 'C': 'G', 'G': 'T', 'T': 'A'}
		for _, i := range at {
			b[i] = next[b[i]]
		}
		return string(b)
	}
	revcomp := func(s string) string {
		comp := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A'}
		b := make([]byte, len(s))
		for i := 0; i < len(s); i++ {
			b[len(s)-1-i] = comp[s[i]]
		}
		return string(b)
	}
	plant := func(background string, at int, site string) string {
		return background[:at] + site + background[at+len(site):]
	}
	bg := SynthesizeGenome(SynthConfig{Seed: 601, ChromLen: 3000, NumChroms: 2})
	chr1 := bg.Chroms[0].Seq.String()
	chr1 = plant(chr1, 100, guides[0].Spacer+"AGG")               // exact, +
	chr1 = plant(chr1, 200, mutate(guides[0].Spacer, 3, 7)+"CGG") // 2 mismatches, +
	chr1 = plant(chr1, 300, revcomp(guides[0].Spacer+"TGG"))      // exact, -
	chr2 := bg.Chroms[1].Seq.String()
	chr2 = plant(chr2, 150, guides[1].Spacer+"GGG")                          // exact, +
	chr2 = plant(chr2, 400, mutate(guides[1].Spacer, 0, 4, 9, 14, 19)+"AGG") // 5 mismatches, +
	chr2 = plant(chr2, 600, revcomp(mutate(guides[1].Spacer, 6, 12)+"AGG"))  // 2 mismatches, -
	g, err := ReadGenome(strings.NewReader(">chr1\n" + chr1 + "\n>chr2\n" + chr2 + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(g, guides, Params{MaxMismatches: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The fixture must exercise the interesting formatting paths: both
	// strands and nonzero mismatch alignments.
	var minus, mismatched bool
	for _, s := range res.Sites {
		minus = minus || s.Strand == '-'
		mismatched = mismatched || s.Mismatches > 0
	}
	if len(res.Sites) == 0 || !minus || !mismatched {
		t.Fatalf("degenerate golden fixture: %d sites, minus=%v, mismatched=%v", len(res.Sites), minus, mismatched)
	}
	return g, guides, res.Sites
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update` to create fixtures)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden fixture (byte diff at offset %d); if intentional, regenerate with -update",
			name, firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestGoldenTSV(t *testing.T) {
	_, _, sites := goldenSites(t)
	var buf bytes.Buffer
	if err := WriteSitesTSV(&buf, sites); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_sites.tsv", buf.Bytes())
}

func TestGoldenBED(t *testing.T) {
	_, _, sites := goldenSites(t)
	var buf bytes.Buffer
	if err := WriteSitesBED(&buf, sites); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_sites.bed", buf.Bytes())
}

// fastaOf renders a genome as FASTA text for the streaming pipeline.
func fastaOf(g *Genome) string {
	var b strings.Builder
	for _, c := range g.Chroms {
		b.WriteString(">")
		b.WriteString(c.Name)
		b.WriteString("\n")
		b.WriteString(c.Seq.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestGoldenStreamingEquivalence: emitting rows incrementally from the
// streaming pipeline's yield callback produces byte-identical TSV and
// BED output to the batch writers over the in-memory search — the
// contract that lets the CLI stream a 3 Gbp reference with constant
// memory and still match batch output exactly.
func TestGoldenStreamingEquivalence(t *testing.T) {
	g, guides, sites := goldenSites(t)

	var batchTSV, batchBED bytes.Buffer
	if err := WriteSitesTSV(&batchTSV, sites); err != nil {
		t.Fatal(err)
	}
	if err := WriteSitesBED(&batchBED, sites); err != nil {
		t.Fatal(err)
	}

	var streamTSV, streamBED bytes.Buffer
	if err := WriteSitesTSVHeader(&streamTSV); err != nil {
		t.Fatal(err)
	}
	_, err := SearchStream(strings.NewReader(fastaOf(g)), guides, Params{MaxMismatches: 5}, func(s Site) error {
		if err := WriteSiteTSV(&streamTSV, s); err != nil {
			return err
		}
		return WriteSiteBED(&streamBED, s)
	})
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(streamTSV.Bytes(), batchTSV.Bytes()) {
		t.Errorf("streaming TSV diverges from batch at offset %d", firstDiff(streamTSV.Bytes(), batchTSV.Bytes()))
	}
	if !bytes.Equal(streamBED.Bytes(), batchBED.Bytes()) {
		t.Errorf("streaming BED diverges from batch at offset %d", firstDiff(streamBED.Bytes(), batchBED.Bytes()))
	}
	// And the streamed TSV matches the checked-in fixture transitively.
	checkGolden(t, "golden_sites.tsv", streamTSV.Bytes())
}

// TestGoldenSeedIndex: the persistent-index scan path must serialize
// byte-identically to the checked-in golden fixtures — the same bytes
// the full-scan flagship produced — in both batch and streaming modes.
// The index goes through a full disk round trip first, so the fixture
// also pins the on-disk format's fidelity.
func TestGoldenSeedIndex(t *testing.T) {
	g, guides, _ := goldenSites(t)
	ix, err := BuildSeedIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden.csix")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	ix, err = LoadSeedIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ValidateGenome(g); err != nil {
		t.Fatal(err)
	}
	p := Params{MaxMismatches: 5, Engine: EngineSeedIndex, SeedIndex: ix}

	res, err := Search(g, guides, p)
	if err != nil {
		t.Fatal(err)
	}
	var tsv, bed bytes.Buffer
	if err := WriteSitesTSV(&tsv, res.Sites); err != nil {
		t.Fatal(err)
	}
	if err := WriteSitesBED(&bed, res.Sites); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_sites.tsv", tsv.Bytes())
	checkGolden(t, "golden_sites.bed", bed.Bytes())

	var streamTSV, streamBED bytes.Buffer
	if err := WriteSitesTSVHeader(&streamTSV); err != nil {
		t.Fatal(err)
	}
	_, err = SearchStream(strings.NewReader(fastaOf(g)), guides, p, func(s Site) error {
		if err := WriteSiteTSV(&streamTSV, s); err != nil {
			return err
		}
		return WriteSiteBED(&streamBED, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_sites.tsv", streamTSV.Bytes())
	checkGolden(t, "golden_sites.bed", streamBED.Bytes())
}
